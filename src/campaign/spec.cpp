#include "campaign/spec.hpp"

#include "support/error.hpp"
#include "support/str.hpp"
#include "workloads/assignment.hpp"

#include <fstream>
#include <set>
#include <sstream>

namespace relperf::campaign {

const char* to_string(ExecutorKind kind) noexcept {
    return kind == ExecutorKind::Sim ? "sim" : "real";
}

ExecutorKind executor_kind_from_string(const std::string& text) {
    if (text == "sim") return ExecutorKind::Sim;
    if (text == "real") return ExecutorKind::Real;
    throw InvalidArgument("executor must be 'sim' or 'real', got '" + text +
                          "'");
}

const std::vector<std::string>& platform_preset_names() {
    static const std::vector<std::string> names = {
        "paper-cpu-gpu", "rpi-server", "smartphone-gpu", "cpu-only"};
    return names;
}

sim::Platform platform_preset(const std::string& name) {
    if (name == "paper-cpu-gpu") return sim::paper_cpu_gpu_platform();
    if (name == "rpi-server") return sim::rpi_server_platform();
    if (name == "smartphone-gpu") return sim::smartphone_gpu_platform();
    if (name == "cpu-only") return sim::cpu_only_platform();
    throw InvalidArgument("unknown platform preset '" + name + "' (known: " +
                          str::join(platform_preset_names(), ", ") + ")");
}

void CampaignSpec::validate() const {
    RELPERF_REQUIRE(!name.empty(), "campaign: name must not be empty");
    RELPERF_REQUIRE(!sizes.empty(), "campaign: sizes must not be empty");
    for (const std::size_t s : sizes) {
        RELPERF_REQUIRE(s > 0, "campaign: task sizes must be positive");
    }
    RELPERF_REQUIRE(sizes.size() <= 16,
                    "campaign: more than 16 tasks means more than 65536 "
                    "assignments — not a sensible campaign");
    RELPERF_REQUIRE(iters > 0, "campaign: iters must be positive");
    RELPERF_REQUIRE(!backend.empty(), "campaign: backend must not be empty");
    if (!variant_backends.empty()) {
        std::set<std::string> unique;
        for (const std::string& name : variant_backends) {
            RELPERF_REQUIRE(!name.empty(),
                            "campaign: variant_backends entries must not be "
                            "empty");
            RELPERF_REQUIRE(unique.insert(name).second,
                            "campaign: duplicate variant backend '" + name +
                                "'");
        }
        // (2B)^k variants; the same 65536-algorithm ceiling the plain
        // assignment plan has.
        const std::size_t choices = 2 * variant_backends.size();
        std::size_t count = 1;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            RELPERF_REQUIRE(count <= 65536 / choices,
                            str::format("campaign: (2*%zu)^%zu variants "
                                        "exceed 65536 — not a sensible "
                                        "campaign",
                                        variant_backends.size(), sizes.size()));
            count *= choices;
        }
    }
    RELPERF_REQUIRE(measurements > 0,
                    "campaign: measurements (N) must be positive");
    if (adaptive_min != 0) {
        RELPERF_REQUIRE(adaptive_min <= measurements,
                        "campaign: adaptive_min_measurements must be <= "
                        "measurements (the adaptive cap)");
        RELPERF_REQUIRE(adaptive_batch > 0,
                        "campaign: adaptive_batch must be positive");
        RELPERF_REQUIRE(adaptive_stability > 0,
                        "campaign: adaptive_stability_rounds must be positive");
        if (adaptive_confidence != 0.0) {
            RELPERF_REQUIRE(adaptive_confidence > 0.5 &&
                                adaptive_confidence < 1.0,
                            "campaign: adaptive_confidence must be in "
                            "(0.5, 1)");
        }
    } else {
        // Coordination and confidence describe how adaptive rounds stop;
        // without adaptive_min_measurements they would be silently inert.
        RELPERF_REQUIRE(!adaptive_coordinated,
                        "campaign: adaptive_coordination requires "
                        "adaptive_min_measurements");
        RELPERF_REQUIRE(adaptive_confidence == 0.0,
                        "campaign: adaptive_confidence requires "
                        "adaptive_min_measurements");
    }
    RELPERF_REQUIRE(shards > 0, "campaign: shards (K) must be positive");
    RELPERF_REQUIRE(device_threads >= 0 && accelerator_threads >= 0,
                    "campaign: thread counts must be non-negative");
    RELPERF_REQUIRE(dispatch_delay_us >= 0.0 && switch_delay_us >= 0.0,
                    "campaign: delays must be non-negative");
    RELPERF_REQUIRE(clustering_repetitions > 0,
                    "campaign: clustering repetitions must be positive");
    RELPERF_REQUIRE(bootstrap_rounds > 0,
                    "campaign: bootstrap rounds must be positive");
    RELPERF_REQUIRE(tie_epsilon >= 0.0, "campaign: tie_epsilon must be >= 0");
    RELPERF_REQUIRE(decision_threshold > 0.5 && decision_threshold <= 1.0,
                    "campaign: decision_threshold must be in (0.5, 1]");
    if (executor == ExecutorKind::Sim) {
        (void)platform_preset(platform); // throws on unknown names
    }
}

namespace {

std::string sizes_to_text(const std::vector<std::size_t>& sizes) {
    std::vector<std::string> parts;
    parts.reserve(sizes.size());
    for (const std::size_t s : sizes) parts.push_back(std::to_string(s));
    return str::join(parts, ",");
}

} // namespace

std::string CampaignSpec::to_text() const {
    std::ostringstream out;
    out << "# relperf campaign spec\n";
    out << "campaign = " << name << '\n';
    out << "sizes = " << sizes_to_text(sizes) << '\n';
    out << "iters = " << iters << '\n';
    out << "executor = " << to_string(executor) << '\n';
    out << "platform = " << platform << '\n';
    out << "backend = " << backend << '\n';
    // Only emitted when the per-task axis is on: uniform specs keep their
    // pre-variant text (and therefore byte-identical spec files).
    if (!variant_backends.empty()) {
        out << "variant_backends = " << str::join(variant_backends, ",")
            << '\n';
    }
    out << "measurements = " << measurements << '\n';
    out << "measurement_seed = " << measurement_seed << '\n';
    // Only emitted when adaptive measurement is on: fixed-N specs keep their
    // pre-adaptive text (and therefore byte-identical spec files).
    if (adaptive_min != 0) {
        out << "adaptive_min_measurements = " << adaptive_min << '\n';
        out << "adaptive_batch = " << adaptive_batch << '\n';
        out << "adaptive_stability_rounds = " << adaptive_stability << '\n';
        // Same rule again one level down: the coordination and confidence
        // keys appear only when set, so pre-coordination adaptive specs keep
        // their exact bytes.
        if (adaptive_coordinated) {
            out << "adaptive_coordination = coordinated\n";
        }
        if (adaptive_confidence != 0.0) {
            out << "adaptive_confidence = "
                << str::format("%.12g", adaptive_confidence) << '\n';
        }
    }
    out << "device_threads = " << device_threads << '\n';
    out << "accelerator_threads = " << accelerator_threads << '\n';
    out << "dispatch_delay_us = " << str::format("%.12g", dispatch_delay_us)
        << '\n';
    out << "switch_delay_us = " << str::format("%.12g", switch_delay_us)
        << '\n';
    out << "warmup = " << warmup << '\n';
    out << "shards = " << shards << '\n';
    out << "clustering_repetitions = " << clustering_repetitions << '\n';
    out << "clustering_seed = " << clustering_seed << '\n';
    out << "bootstrap_rounds = " << bootstrap_rounds << '\n';
    out << "tie_epsilon = " << str::format("%.12g", tie_epsilon) << '\n';
    out << "decision_threshold = " << str::format("%.12g", decision_threshold)
        << '\n';
    return out.str();
}

CampaignSpec CampaignSpec::parse(const std::string& text,
                                 const std::string& source) {
    CampaignSpec spec;
    std::istringstream in(text);
    std::string line;
    std::size_t line_number = 0;
    std::set<std::string> seen;

    while (std::getline(in, line)) {
        ++line_number;
        if (line_number == 1 && str::starts_with(line, "\xEF\xBB\xBF")) {
            line.erase(0, 3);
        }
        const std::string_view trimmed = str::trim(line);
        if (trimmed.empty() || trimmed.front() == '#') continue;

        const auto fail = [&](const std::string& message) -> void {
            throw Error(str::format("%s:%zu: %s", source.c_str(), line_number,
                                    message.c_str()));
        };

        const std::size_t eq = trimmed.find('=');
        if (eq == std::string_view::npos) {
            fail("expected 'key = value', got '" + std::string(trimmed) + "'");
        }
        const std::string key(str::trim(trimmed.substr(0, eq)));
        const std::string value(str::trim(trimmed.substr(eq + 1)));
        if (key.empty()) fail("empty key");
        if (!seen.insert(key).second) fail("duplicate key '" + key + "'");

        bool known = true;
        try {
            if (key == "campaign") {
                spec.name = value;
            } else if (key == "sizes") {
                spec.sizes = str::parse_size_list(value, key);
            } else if (key == "iters") {
                spec.iters = str::parse_size(value, key);
            } else if (key == "executor") {
                spec.executor = executor_kind_from_string(value);
            } else if (key == "platform") {
                spec.platform = value;
            } else if (key == "backend") {
                spec.backend = value;
            } else if (key == "variant_backends") {
                spec.variant_backends = str::parse_name_list(value, key);
            } else if (key == "measurements") {
                spec.measurements = str::parse_size(value, key);
            } else if (key == "measurement_seed") {
                spec.measurement_seed = str::parse_u64(value, key);
            } else if (key == "adaptive_min_measurements") {
                // An explicit 0 would silently mean "fixed-N" and drop the
                // other adaptive keys on the next round trip: omitting the
                // key is how a spec says adaptive-off.
                spec.adaptive_min = str::parse_positive_size(value, key);
            } else if (key == "adaptive_batch") {
                spec.adaptive_batch = str::parse_positive_size(value, key);
            } else if (key == "adaptive_stability_rounds") {
                spec.adaptive_stability = str::parse_positive_size(value, key);
            } else if (key == "adaptive_coordination") {
                if (value == "coordinated") {
                    spec.adaptive_coordinated = true;
                } else if (value == "shard-local") {
                    spec.adaptive_coordinated = false;
                } else {
                    throw InvalidArgument(
                        "adaptive_coordination must be 'coordinated' or "
                        "'shard-local', got '" +
                        value + "'");
                }
            } else if (key == "adaptive_confidence") {
                spec.adaptive_confidence = str::parse_double(value, key);
            } else if (key == "device_threads") {
                spec.device_threads = static_cast<int>(str::parse_size(value, key));
            } else if (key == "accelerator_threads") {
                spec.accelerator_threads =
                    static_cast<int>(str::parse_size(value, key));
            } else if (key == "dispatch_delay_us") {
                spec.dispatch_delay_us = str::parse_double(value, key);
            } else if (key == "switch_delay_us") {
                spec.switch_delay_us = str::parse_double(value, key);
            } else if (key == "warmup") {
                spec.warmup = str::parse_size(value, key);
            } else if (key == "shards") {
                spec.shards = str::parse_size(value, key);
            } else if (key == "clustering_repetitions") {
                spec.clustering_repetitions = str::parse_size(value, key);
            } else if (key == "clustering_seed") {
                spec.clustering_seed = str::parse_u64(value, key);
            } else if (key == "bootstrap_rounds") {
                spec.bootstrap_rounds = str::parse_size(value, key);
            } else if (key == "tie_epsilon") {
                spec.tie_epsilon = str::parse_double(value, key);
            } else if (key == "decision_threshold") {
                spec.decision_threshold = str::parse_double(value, key);
            } else {
                known = false; // reported below, outside the re-anchoring catch
            }
        } catch (const Error& e) {
            // Re-anchor value errors (parse_size etc.) to file + line.
            fail(e.what());
        }
        if (!known) fail("unknown key '" + key + "'");
    }

    // Inert adaptive knobs are almost certainly a typo'd plan: batch and
    // stability do nothing without adaptive_min_measurements, and to_text()
    // would silently drop them on the next round trip.
    if (!seen.count("adaptive_min_measurements")) {
        for (const char* knob : {"adaptive_batch", "adaptive_stability_rounds",
                                 "adaptive_coordination",
                                 "adaptive_confidence"}) {
            if (seen.count(knob)) {
                throw Error(source + ": invalid campaign spec: '" +
                            std::string(knob) +
                            "' requires 'adaptive_min_measurements'");
            }
        }
    }
    try {
        spec.validate();
    } catch (const Error& e) {
        throw Error(source + ": invalid campaign spec: " + e.what());
    }
    return spec;
}

CampaignSpec CampaignSpec::load(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("campaign: cannot open spec '" + path + "'");
    }
    std::ostringstream content;
    content << in.rdbuf();
    return parse(content.str(), path);
}

void CampaignSpec::save(const std::string& path) const {
    validate();
    std::ofstream out(path);
    if (!out) {
        throw Error("campaign: cannot write spec '" + path + "'");
    }
    out << to_text();
    if (!out) {
        throw Error("campaign: failed writing spec '" + path + "'");
    }
}

std::uint64_t CampaignSpec::hash() const {
    // Canonical text of the measurement plan only (see header).
    std::ostringstream plan;
    plan << "sizes=" << sizes_to_text(sizes) << ";iters=" << iters
         << ";executor=" << to_string(executor);
    if (executor == ExecutorKind::Sim) {
        plan << ";platform=" << platform;
    } else {
        plan << ";device_threads=" << device_threads
             << ";accelerator_threads=" << accelerator_threads
             << ";dispatch_delay_us=" << str::format("%.12g", dispatch_delay_us)
             << ";switch_delay_us=" << str::format("%.12g", switch_delay_us)
             << ";warmup=" << warmup;
    }
    plan << ";measurements=" << measurements
         << ";measurement_seed=" << measurement_seed;
    // Backward-compatible hashing: the default backend contributes nothing,
    // so spec files and shard manifests from before the backend axis keep
    // their hashes; any other backend is a different measurement plan.
    if (backend != "portable") plan << ";backend=" << backend;
    // Same rule for the per-task axis: an empty variant_backends list is the
    // pre-variant plan and contributes nothing.
    if (!variant_backends.empty()) {
        plan << ";variant_backends=" << str::join(variant_backends, ",");
    }
    // Adaptive plans measure data-dependent per-algorithm counts, and the
    // stopping rule consults the clusterer — so the adaptive knobs AND the
    // analysis knobs become measurement-determining. Fixed-N specs
    // contribute nothing here, keeping every pre-adaptive hash stable.
    if (adaptive_min != 0) {
        plan << ";adaptive_min=" << adaptive_min
             << ";adaptive_batch=" << adaptive_batch
             << ";adaptive_stability=" << adaptive_stability
             << ";clustering_repetitions=" << clustering_repetitions
             << ";clustering_seed=" << clustering_seed
             << ";bootstrap_rounds=" << bootstrap_rounds
             << ";tie_epsilon=" << str::format("%.12g", tie_epsilon)
             << ";decision_threshold="
             << str::format("%.12g", decision_threshold);
        // Coordination changes which clustering the stop decisions watch and
        // confidence changes the stopping rule — both are measurement-
        // determining. Emitted only when set so pre-coordination adaptive
        // specs keep their plan hashes.
        if (adaptive_coordinated) plan << ";adaptive_coordination=coordinated";
        if (adaptive_confidence != 0.0) {
            plan << ";adaptive_confidence="
                 << str::format("%.12g", adaptive_confidence);
        }
    }

    // FNV-1a 64-bit.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : plan.str()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t CampaignSpec::prefix_hash() const {
    // Zero is not a valid budget (validate() demands measurements > 0), so
    // hashing the plan with a zero sentinel cannot collide with any real
    // plan hash — and reusing hash() keeps the canonical plan text in one
    // place.
    CampaignSpec budget_blind = *this;
    budget_blind.measurements = 0;
    return budget_blind.hash();
}

workloads::TaskChain CampaignSpec::chain() const {
    return workloads::make_rls_chain(sizes, iters, name + "-chain", backend);
}

std::vector<workloads::DeviceAssignment> CampaignSpec::assignments() const {
    return workloads::enumerate_assignments(sizes.size());
}

std::vector<workloads::VariantAssignment> CampaignSpec::variants() const {
    if (!variant_backends.empty()) {
        return workloads::enumerate_variants(sizes.size(), variant_backends);
    }
    std::vector<workloads::VariantAssignment> out;
    for (const workloads::DeviceAssignment& assignment : assignments()) {
        out.emplace_back(assignment);
    }
    return out;
}

core::AdaptiveConfig CampaignSpec::adaptive_config() const {
    RELPERF_REQUIRE(adaptive(),
                    "campaign: adaptive_config() on a fixed-N spec");
    core::AdaptiveConfig config;
    config.min_n = adaptive_min;
    config.max_n = measurements;
    config.batch = adaptive_batch;
    config.stability_rounds = adaptive_stability;
    if (adaptive_confidence != 0.0) {
        config.rule = core::StoppingRuleKind::Confidence;
        config.confidence = adaptive_confidence;
    }
    return config;
}

core::AnalysisConfig CampaignSpec::analysis_config() const {
    core::AnalysisConfig config;
    config.measurements_per_alg = measurements;
    config.measurement_seed = measurement_seed;
    config.comparator.rounds = bootstrap_rounds;
    config.comparator.tie_epsilon = tie_epsilon;
    config.comparator.decision_threshold = decision_threshold;
    config.clustering.repetitions = clustering_repetitions;
    config.clustering.seed = clustering_seed;
    if (adaptive()) config.adaptive = adaptive_config();
    return config;
}

} // namespace relperf::campaign
