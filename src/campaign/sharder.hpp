#pragma once
//! \file sharder.hpp
//! Deterministic partition of a campaign's assignment list into K shards.
//!
//! Shards are strided (shard i owns global assignment indices i, i+K,
//! i+2K, ...): assignment cost grows with the number of offloaded tasks, so
//! striding balances work better than contiguous blocks, and the mapping is a
//! pure function of (assignment_count, K, i) — no state, no RNG, no
//! dependence on which machine computes it. Combined with the per-assignment
//! measurement streams of core::measure_assignments, this makes every shard's
//! output reproducible and independent of execution order.

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::campaign {

/// The work list of one shard: which global assignment indices it measures.
struct ShardPlan {
    std::size_t index = 0; ///< This shard, in [0, count).
    std::size_t count = 1; ///< Total number of shards (K).
    std::vector<std::size_t> assignment_indices; ///< Ascending global indices.
};

/// Splits `assignment_count` assignments into `shard_count` strided shards.
/// Requires 1 <= shard_count <= assignment_count (every shard non-empty).
class Sharder {
public:
    Sharder(std::size_t assignment_count, std::size_t shard_count);

    [[nodiscard]] std::size_t assignment_count() const noexcept {
        return assignment_count_;
    }
    [[nodiscard]] std::size_t shard_count() const noexcept {
        return shard_count_;
    }

    /// The plan of shard `shard_index`; throws when out of range.
    [[nodiscard]] ShardPlan plan(std::size_t shard_index) const;

    /// All K plans, ordered by shard index.
    [[nodiscard]] std::vector<ShardPlan> all_plans() const;

    /// The shard that owns global assignment `assignment_index`.
    [[nodiscard]] std::size_t owner_of(std::size_t assignment_index) const;

private:
    std::size_t assignment_count_;
    std::size_t shard_count_;
};

/// A `i/K` shard reference as given on the command line (0-based index).
struct ShardRef {
    std::size_t index = 0;
    std::size_t count = 1;
};

/// Parses "i/K" (e.g. "0/4"); throws InvalidArgument on malformed text or
/// when the 0-based index is not below K.
[[nodiscard]] ShardRef parse_shard_ref(const std::string& text);

} // namespace relperf::campaign
