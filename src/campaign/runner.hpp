#pragma once
//! \file runner.hpp
//! Shard execution. run_shard() measures exactly the assignments a shard
//! owns, on per-assignment RNG streams derived from the campaign's
//! measurement seed and each assignment's *global* index
//! (core::assignment_stream_seed) — so the union of all shards reproduces
//! the single-process pipeline bit-for-bit, no matter where or in which
//! order the shards ran. LocalShardRunner fans the shards of one campaign
//! out across worker threads on this machine.

#include "campaign/shard_io.hpp"
#include "campaign/spec.hpp"
#include "core/pipeline.hpp"

#include <cstddef>
#include <memory>
#include <vector>

namespace relperf::campaign {

/// Measures shard `shard_index` of `spec`'s plan split into `shard_count`
/// shards. Pass shard_count = 0 to use spec.shards. The result's manifest
/// carries the spec hash, the shard reference and this host's name.
[[nodiscard]] ShardResult run_shard(const CampaignSpec& spec,
                                    std::size_t shard_index,
                                    std::size_t shard_count = 0);

/// Outcome of a coordinated adaptive campaign: the merged analysis plus the
/// per-shard results (for shard-file emission) and the coordinator's
/// broadcast history.
struct CoordinatedCampaignResult {
    /// Final merged analysis — measurements in global enumeration order,
    /// clustering identical to analyze_measurements on them, with
    /// fixed_n_samples restored to the plan's true cap.
    core::AnalysisResult analysis;
    /// Per-shard slices of the coordinated run, ordered by shard index. Each
    /// manifest records the coordinated plan and the broadcast history, so
    /// the files a coordinated campaign writes re-merge like any others.
    std::vector<ShardResult> shards;
    /// Cumulative global stop-set size after each coordinator round.
    std::vector<std::size_t> stopset_rounds;
    std::size_t rounds = 0; ///< Coordinator rounds (clusterings consulted).
};

/// Runs an adaptive campaign with cross-shard coordinated stopping: between
/// rounds the coordinator re-clusters the *merged* measurements of all
/// shards and broadcasts the global stop-set, so stop decisions watch the
/// same statistic the final analysis reports. Because every variant draws
/// from the stream derived from its global index and the stop-set is global,
/// per-algorithm sample counts are K-invariant: shard_count only changes how
/// the results are sliced into shard files, never a measured value — and
/// with shard_count = 1 the run is bit-identical to the shard-local engine.
/// Requires an adaptive spec with adaptive_coordinated set (the key is
/// measurement-determining, so the manifests and the plan hash must record
/// it; relperf_cli --coordinated sets it on the loaded spec). shard_count =
/// 0 uses spec.shards.
[[nodiscard]] CoordinatedCampaignResult run_coordinated_campaign(
    const CampaignSpec& spec, std::size_t shard_count = 0);

/// As above, but drawing from `source` instead of building the spec's
/// executor-backed source internally. `source` must enumerate the spec's
/// full global variant list in order, on the per-assignment streams of
/// core::assignment_stream_seed — the seam the result cache's
/// prefix-extension path uses to serve already-measured draws from disk
/// while fresh draws fall through to the real executor.
[[nodiscard]] CoordinatedCampaignResult run_coordinated_campaign(
    const CampaignSpec& spec, std::size_t shard_count,
    core::SampleSource& source);

/// Owns the spec's executor plus the engine sample source over the *full*
/// global variant list (streams derived from global indices) — the building
/// block for callers that drive measurement themselves rather than through
/// run_shard, such as the result cache's prefix-extension path. The executor
/// lives as long as the bundle, so the source reference stays valid.
class GlobalSampleSource {
public:
    explicit GlobalSampleSource(const CampaignSpec& spec);
    ~GlobalSampleSource();
    GlobalSampleSource(const GlobalSampleSource&) = delete;
    GlobalSampleSource& operator=(const GlobalSampleSource&) = delete;

    [[nodiscard]] core::SampleSource& source();

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Runs every shard of a campaign on this machine.
class LocalShardRunner {
public:
    /// `workers` = maximum concurrent shard threads; 0 means one per
    /// hardware thread. Campaigns with ExecutorKind::Real always run their
    /// shards sequentially regardless of `workers`: concurrent wall-clock
    /// measurement on one machine would contend for the CPUs being measured.
    explicit LocalShardRunner(std::size_t workers = 0);

    /// Runs all `shard_count` (0 = spec.shards) shards; returns them ordered
    /// by shard index. The first worker exception, if any, is rethrown.
    [[nodiscard]] std::vector<ShardResult> run(const CampaignSpec& spec,
                                               std::size_t shard_count = 0) const;

private:
    std::size_t workers_;
};

} // namespace relperf::campaign
