#pragma once
//! \file runner.hpp
//! Shard execution. run_shard() measures exactly the assignments a shard
//! owns, on per-assignment RNG streams derived from the campaign's
//! measurement seed and each assignment's *global* index
//! (core::assignment_stream_seed) — so the union of all shards reproduces
//! the single-process pipeline bit-for-bit, no matter where or in which
//! order the shards ran. LocalShardRunner fans the shards of one campaign
//! out across worker threads on this machine.

#include "campaign/shard_io.hpp"
#include "campaign/spec.hpp"

#include <cstddef>
#include <vector>

namespace relperf::campaign {

/// Measures shard `shard_index` of `spec`'s plan split into `shard_count`
/// shards. Pass shard_count = 0 to use spec.shards. The result's manifest
/// carries the spec hash, the shard reference and this host's name.
[[nodiscard]] ShardResult run_shard(const CampaignSpec& spec,
                                    std::size_t shard_index,
                                    std::size_t shard_count = 0);

/// Runs every shard of a campaign on this machine.
class LocalShardRunner {
public:
    /// `workers` = maximum concurrent shard threads; 0 means one per
    /// hardware thread. Campaigns with ExecutorKind::Real always run their
    /// shards sequentially regardless of `workers`: concurrent wall-clock
    /// measurement on one machine would contend for the CPUs being measured.
    explicit LocalShardRunner(std::size_t workers = 0);

    /// Runs all `shard_count` (0 = spec.shards) shards; returns them ordered
    /// by shard index. The first worker exception, if any, is rethrown.
    [[nodiscard]] std::vector<ShardResult> run(const CampaignSpec& spec,
                                               std::size_t shard_count = 0) const;

private:
    std::size_t workers_;
};

} // namespace relperf::campaign
