#include "campaign/shard_io.hpp"

#include "core/io.hpp"
#include "support/csv.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <glob.h>
#include <unistd.h>
#define RELPERF_HAVE_POSIX 1
#else
#define RELPERF_HAVE_POSIX 0
#endif

namespace relperf::campaign {

std::string host_name() {
#if RELPERF_HAVE_POSIX
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
        return buf;
    }
#endif
    return "unknown";
}

void write_shard_csv(const ShardResult& shard, const std::string& path) {
    RELPERF_REQUIRE(!shard.measurements.empty(),
                    "write_shard_csv: shard has no measurements");
    // A manifest whose declared per-algorithm counts disagree with the
    // measurements would persist a lie — reject it before touching the
    // file, mirroring the read-side truncation check.
    if (!shard.manifest.samples_per_algorithm.empty()) {
        RELPERF_REQUIRE(shard.manifest.samples_per_algorithm.size() ==
                            shard.measurements.size(),
                        "write_shard_csv: manifest declares a different "
                        "number of per-algorithm counts than the shard holds "
                        "algorithms");
        for (std::size_t i = 0; i < shard.measurements.size(); ++i) {
            RELPERF_REQUIRE(shard.manifest.samples_per_algorithm[i] ==
                                shard.measurements.samples(i).size(),
                            "write_shard_csv: manifest sample count for '" +
                                shard.measurements.name(i) +
                                "' disagrees with its measurement rows");
        }
    }
    std::ofstream out(path);
    if (!out) {
        throw Error("write_shard_csv: cannot open '" + path + "'");
    }
    const ShardManifest& m = shard.manifest;
    out << "# relperf-shard v1\n";
    out << "# campaign = " << m.campaign << '\n';
    out << "# spec_hash = " << str::format("%016llx",
                                           static_cast<unsigned long long>(
                                               m.spec_hash))
        << '\n';
    out << "# shard_index = " << m.shard_index << '\n';
    out << "# shard_count = " << m.shard_count << '\n';
    out << "# host = " << m.host << '\n';
    // Informational, like host. Values are sanitized by the obs layer
    // (never contain ';', '=' or newlines); skip any that slip through so
    // the single-line encoding stays parseable.
    if (!m.provenance.empty()) {
        std::vector<std::string> facts;
        facts.reserve(m.provenance.size());
        for (const auto& [key, value] : m.provenance) {
            if (key.find_first_of("=;\n") != std::string::npos ||
                value.find_first_of("=;\n") != std::string::npos) {
                continue;
            }
            facts.push_back(key + "=" + value);
        }
        if (!facts.empty()) {
            out << "# provenance = " << str::join(facts, ";") << '\n';
        }
    }
    out << "# backend = " << m.backend << '\n';
    // Only written for per-task-variant campaigns: plain campaigns keep the
    // exact pre-variant file form.
    if (!m.variant_backends.empty()) {
        out << "# variant_backends = " << str::join(m.variant_backends, ",")
            << '\n';
    }
    // Only written for adaptive campaigns: fixed-N files keep the exact
    // pre-adaptive form. The per-algorithm counts declare what early
    // stopping decided, so a merge can validate the rows against them.
    if (m.adaptive_min != 0) {
        out << "# adaptive_min_measurements = " << m.adaptive_min << '\n';
        out << "# adaptive_batch = " << m.adaptive_batch << '\n';
        out << "# adaptive_stability_rounds = " << m.adaptive_stability << '\n';
        // Coordination lines only when the coordinator drove the plan:
        // shard-local adaptive files keep the exact pre-coordination form.
        if (m.adaptive_coordinated) {
            out << "# adaptive_coordination = coordinated\n";
        }
        if (m.adaptive_confidence != 0.0) {
            out << "# adaptive_confidence = "
                << str::format("%.12g", m.adaptive_confidence) << '\n';
        }
        if (!m.stopset_rounds.empty()) {
            std::vector<std::string> rounds;
            rounds.reserve(m.stopset_rounds.size());
            for (const std::size_t n : m.stopset_rounds) {
                rounds.push_back(std::to_string(n));
            }
            out << "# stopset_rounds = " << str::join(rounds, ",") << '\n';
        }
        // The declared counts (validated above) when the caller set them,
        // else derived from the rows — one source of truth either way.
        std::vector<std::string> counts;
        counts.reserve(shard.measurements.size());
        for (std::size_t i = 0; i < shard.measurements.size(); ++i) {
            counts.push_back(std::to_string(
                m.samples_per_algorithm.empty()
                    ? shard.measurements.samples(i).size()
                    : m.samples_per_algorithm[i]));
        }
        out << "# samples_per_algorithm = " << str::join(counts, ",") << '\n';
    }
    out << "algorithm,measurement_index,seconds\n";
    for (std::size_t i = 0; i < shard.measurements.size(); ++i) {
        const auto samples = shard.measurements.samples(i);
        const std::string name =
            support::csv_escape(shard.measurements.name(i));
        for (std::size_t k = 0; k < samples.size(); ++k) {
            out << name << ',' << k << ','
                << str::format("%.17g", samples[k]) << '\n';
        }
    }
    if (!out) {
        throw Error("write_shard_csv: failed writing '" + path + "'");
    }
}

ShardResult read_shard_csv(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw Error("read_shard_csv: cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();

    // Manifest: `# key = value` comment lines before the CSV header.
    ShardResult out;
    std::set<std::string> seen;
    std::istringstream lines(content);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(lines, line)) {
        ++line_number;
        const std::string_view trimmed = str::trim(line);
        if (trimmed.empty()) continue;
        if (trimmed.front() != '#') break; // CSV part begins
        const std::string_view body = str::trim(trimmed.substr(1));
        const std::size_t eq = body.find('=');
        if (eq == std::string_view::npos) continue; // plain comment
        const std::string key(str::trim(body.substr(0, eq)));
        const std::string value(str::trim(body.substr(eq + 1)));
        const auto fail = [&](const std::string& message) -> void {
            throw Error(str::format("%s:%zu: %s", path.c_str(), line_number,
                                    message.c_str()));
        };
        if (!key.empty() && !seen.insert(key).second) {
            fail("duplicate manifest key '" + key + "'");
        }
        try {
            if (key == "spec_hash") {
                out.manifest.spec_hash = str::parse_u64("0x" + value, key);
            } else if (key == "shard_index") {
                out.manifest.shard_index = str::parse_size(value, key);
            } else if (key == "shard_count") {
                out.manifest.shard_count = str::parse_size(value, key);
            } else if (key == "campaign") {
                out.manifest.campaign = value;
            } else if (key == "host") {
                out.manifest.host = value;
            } else if (key == "backend") {
                out.manifest.backend = value;
            } else if (key == "variant_backends") {
                out.manifest.variant_backends =
                    str::parse_name_list(value, key);
            } else if (key == "adaptive_min_measurements") {
                // Zero-rejecting, like CampaignSpec::parse: an explicit 0
                // would silently read back as a fixed-N manifest.
                out.manifest.adaptive_min = str::parse_positive_size(value, key);
            } else if (key == "adaptive_batch") {
                out.manifest.adaptive_batch =
                    str::parse_positive_size(value, key);
            } else if (key == "adaptive_stability_rounds") {
                out.manifest.adaptive_stability =
                    str::parse_positive_size(value, key);
            } else if (key == "adaptive_coordination") {
                if (value == "coordinated") {
                    out.manifest.adaptive_coordinated = true;
                } else if (value == "shard-local") {
                    out.manifest.adaptive_coordinated = false;
                } else {
                    fail("adaptive_coordination must be 'coordinated' or "
                         "'shard-local', got '" +
                         value + "'");
                }
            } else if (key == "adaptive_confidence") {
                out.manifest.adaptive_confidence =
                    str::parse_double(value, key);
            } else if (key == "stopset_rounds") {
                // Cumulative counts may legitimately start at 0 (a first
                // round that froze nobody), so plain parse_size_list.
                out.manifest.stopset_rounds = str::parse_size_list(value, key);
            } else if (key == "samples_per_algorithm") {
                out.manifest.samples_per_algorithm =
                    str::parse_size_list(value, key);
            } else if (key == "provenance") {
                for (const std::string& fact : str::split(value, ';')) {
                    const std::size_t sep = fact.find('=');
                    if (sep == std::string::npos) continue;
                    out.manifest.provenance.emplace_back(
                        std::string(str::trim(fact.substr(0, sep))),
                        std::string(str::trim(fact.substr(sep + 1))));
                }
            }
            // Unknown keys are ignored: forward compatibility for future
            // manifest fields.
        } catch (const Error& e) {
            fail(e.what());
        }
    }

    for (const char* required : {"spec_hash", "shard_index", "shard_count"}) {
        if (!seen.count(required)) {
            throw Error(path + ": not a relperf shard file (missing '# " +
                        required + " = ...' manifest line)");
        }
    }
    if (out.manifest.shard_index >= out.manifest.shard_count) {
        throw Error(str::format("%s: manifest shard_index %zu must be below "
                                "shard_count %zu",
                                path.c_str(), out.manifest.shard_index,
                                out.manifest.shard_count));
    }

    // The measurement rows (comments are skipped by the core parser).
    out.measurements = core::parse_measurements_csv(content, path);

    // An adaptive manifest declares its per-algorithm counts; the rows must
    // agree, or the file was truncated or edited after the shard ran.
    const std::vector<std::size_t>& declared =
        out.manifest.samples_per_algorithm;
    if (!declared.empty()) {
        if (declared.size() != out.measurements.size()) {
            throw Error(str::format(
                "%s: manifest declares %zu per-algorithm sample counts but "
                "the file holds %zu algorithms",
                path.c_str(), declared.size(), out.measurements.size()));
        }
        for (std::size_t i = 0; i < declared.size(); ++i) {
            const std::size_t rows = out.measurements.samples(i).size();
            if (rows != declared[i]) {
                throw Error(str::format(
                    "%s: algorithm %s has %zu measurement rows, manifest "
                    "declares %zu — the file is truncated or was edited",
                    path.c_str(), out.measurements.name(i).c_str(), rows,
                    declared[i]));
            }
        }
    }
    return out;
}

std::vector<std::string> expand_shard_pattern(const std::string& pattern) {
    RELPERF_REQUIRE(!str::trim(pattern).empty(),
                    "expand_shard_pattern: empty pattern");
    std::vector<std::string> paths;
    if (pattern.find_first_of("*?[") != std::string::npos) {
#if RELPERF_HAVE_POSIX
        glob_t results{};
        const int rc = glob(pattern.c_str(), 0, nullptr, &results);
        if (rc == 0) {
            for (std::size_t i = 0; i < results.gl_pathc; ++i) {
                paths.emplace_back(results.gl_pathv[i]);
            }
        }
        globfree(&results);
        if (rc != 0 && rc != GLOB_NOMATCH) {
            throw Error("expand_shard_pattern: glob failed on '" + pattern +
                        "'");
        }
        if (paths.empty()) {
            throw Error("expand_shard_pattern: no files match '" + pattern +
                        "'");
        }
        std::sort(paths.begin(), paths.end());
        return paths;
#else
        throw Error("expand_shard_pattern: glob patterns are not supported "
                    "on this platform; pass a comma-separated list of shard "
                    "files instead of '" + pattern + "'");
#endif
    }
    for (const std::string& field : str::split(pattern, ',')) {
        const std::string path(str::trim(field));
        if (!path.empty()) paths.push_back(path);
    }
    if (paths.empty()) {
        throw Error("expand_shard_pattern: no paths in '" + pattern + "'");
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace relperf::campaign
