#include "campaign/sharder.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace relperf::campaign {

Sharder::Sharder(std::size_t assignment_count, std::size_t shard_count)
    : assignment_count_(assignment_count), shard_count_(shard_count) {
    RELPERF_REQUIRE(shard_count > 0, "Sharder: shard count (K) must be positive");
    RELPERF_REQUIRE(assignment_count > 0, "Sharder: nothing to shard");
    RELPERF_REQUIRE(
        shard_count <= assignment_count,
        str::format("Sharder: %zu shards for %zu assignments would leave "
                    "empty shards; use K <= %zu",
                    shard_count, assignment_count, assignment_count));
}

ShardPlan Sharder::plan(std::size_t shard_index) const {
    RELPERF_REQUIRE(shard_index < shard_count_,
                    str::format("Sharder: shard index %zu out of range [0, %zu)",
                                shard_index, shard_count_));
    ShardPlan out;
    out.index = shard_index;
    out.count = shard_count_;
    for (std::size_t i = shard_index; i < assignment_count_; i += shard_count_) {
        out.assignment_indices.push_back(i);
    }
    return out;
}

std::vector<ShardPlan> Sharder::all_plans() const {
    std::vector<ShardPlan> out;
    out.reserve(shard_count_);
    for (std::size_t i = 0; i < shard_count_; ++i) out.push_back(plan(i));
    return out;
}

std::size_t Sharder::owner_of(std::size_t assignment_index) const {
    RELPERF_REQUIRE(assignment_index < assignment_count_,
                    "Sharder: assignment index out of range");
    return assignment_index % shard_count_;
}

ShardRef parse_shard_ref(const std::string& text) {
    const std::vector<std::string> parts = str::split(str::trim(text), '/');
    if (parts.size() != 2) {
        throw InvalidArgument("--shard expects 'i/K' (e.g. '0/4'), got '" +
                              text + "'");
    }
    ShardRef ref;
    ref.index = str::parse_size(parts[0], "--shard index");
    ref.count = str::parse_size(parts[1], "--shard count");
    RELPERF_REQUIRE(ref.count > 0, "--shard: K must be positive");
    RELPERF_REQUIRE(ref.index < ref.count,
                    str::format("--shard: index %zu must be below K = %zu "
                                "(indices are 0-based)",
                                ref.index, ref.count));
    return ref;
}

} // namespace relperf::campaign
