#pragma once
//! \file profile.hpp
//! Calibrated cost model: per-task conditional mean tables reproducing the
//! measurement regime of the paper's testbed (Xeon 8160 core + P100 under
//! TensorFlow 2.1), which this environment cannot measure directly.
//!
//! Calibration targets (paper):
//!  * Table I cluster structure for the RLS chain {50, 75, 300}, n = 10.
//!  * Sec. IV: mean(algDDD) - mean(algDDA) ~ 2 ms, speed-up ~ 1.05 at n = 10,
//!    growing with n; crossover below n ~ 7.
//!  * Figure 1b regime for the two-loop chain: AD clearly best at N = 500,
//!    AD vs AA borderline at N = 30, DD ~ DA statistically equivalent.
//! EXPERIMENTS.md tabulates paper-reported vs simulator-produced results.

#include "sim/cost_model.hpp"

#include <vector>

namespace relperf::sim {

/// Conditional timing of one task.
struct TaskTiming {
    double per_iter_device_s = 0.0; ///< Seconds per loop iteration on D.
    double per_iter_accel_s = 0.0;  ///< Seconds per loop iteration on A.
    double enter_accel_s = 0.0;     ///< Staging when switching D -> A before the task.
    double enter_device_s = 0.0;    ///< Staging when switching A -> D before the task.
    /// Signed extra on A when the previous task also ran on A. Positive models
    /// framework interference (memory-pool pressure after a resident
    /// predecessor); negative models locality bonuses.
    double resident_extra_s = 0.0;
};

/// Table-driven CostModel. The chain passed to task_parts must have exactly
/// one TaskTiming per task; iteration counts scale the per-iteration parts,
/// staging costs are one-time.
class CalibratedProfile final : public CostModel {
public:
    CalibratedProfile(std::string name, std::vector<TaskTiming> timings,
                      double exit_cost_s);

    [[nodiscard]] TaskTimeParts task_parts(const workloads::TaskChain& chain,
                                           std::size_t index, workloads::Placement p,
                                           workloads::Placement prev) const override;

    [[nodiscard]] double exit_seconds(const workloads::TaskChain& chain,
                                      workloads::Placement last) const override;

    [[nodiscard]] std::string name() const override { return name_; }

    [[nodiscard]] const std::vector<TaskTiming>& timings() const noexcept {
        return timings_;
    }

private:
    std::string name_;
    std::vector<TaskTiming> timings_;
    double exit_cost_s_;
};

/// Profile for workloads::paper_rls_chain(n) — any n; per-iteration costs are
/// constant, staging costs fixed. Matches Table I / Sec. IV targets at n=10.
[[nodiscard]] CalibratedProfile paper_rls_profile();

/// Profile for workloads::two_loop_chain() — matches the Figure 1b regime.
[[nodiscard]] CalibratedProfile fig1b_profile();

} // namespace relperf::sim
