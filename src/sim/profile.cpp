#include "sim/profile.hpp"

#include "support/error.hpp"

namespace relperf::sim {

using workloads::Placement;

CalibratedProfile::CalibratedProfile(std::string name, std::vector<TaskTiming> timings,
                                     double exit_cost_s)
    : name_(std::move(name)), timings_(std::move(timings)), exit_cost_s_(exit_cost_s) {
    RELPERF_REQUIRE(!timings_.empty(), "CalibratedProfile: need at least one task");
    RELPERF_REQUIRE(exit_cost_s_ >= 0.0, "CalibratedProfile: exit cost must be >= 0");
    for (const TaskTiming& t : timings_) {
        RELPERF_REQUIRE(t.per_iter_device_s >= 0.0 && t.per_iter_accel_s >= 0.0,
                        "CalibratedProfile: per-iteration costs must be >= 0");
        RELPERF_REQUIRE(t.enter_accel_s >= 0.0 && t.enter_device_s >= 0.0,
                        "CalibratedProfile: staging costs must be >= 0");
    }
}

TaskTimeParts CalibratedProfile::task_parts(const workloads::TaskChain& chain,
                                            std::size_t index, Placement p,
                                            Placement prev) const {
    RELPERF_REQUIRE(chain.size() == timings_.size(),
                    "CalibratedProfile: chain '" + chain.name +
                        "' does not match this profile's task count");
    RELPERF_REQUIRE(index < timings_.size(), "CalibratedProfile: task index out of range");
    const TaskTiming& t = timings_[index];
    const double iters = static_cast<double>(chain.tasks[index].iters);

    TaskTimeParts parts;
    if (p == Placement::Device) {
        parts.compute_s = iters * t.per_iter_device_s;
        if (prev == Placement::Accelerator) parts.staging_s = t.enter_device_s;
    } else {
        parts.compute_s = iters * t.per_iter_accel_s;
        if (prev == Placement::Device) {
            parts.staging_s = t.enter_accel_s;
        } else {
            parts.compute_s += t.resident_extra_s;
        }
    }
    RELPERF_ASSERT(parts.compute_s >= 0.0,
                   "CalibratedProfile: resident_extra drove compute time negative");
    return parts;
}

double CalibratedProfile::exit_seconds(const workloads::TaskChain& chain,
                                       Placement last) const {
    RELPERF_REQUIRE(chain.size() == timings_.size(),
                    "CalibratedProfile: chain does not match this profile");
    return last == Placement::Accelerator ? exit_cost_s_ : 0.0;
}

CalibratedProfile paper_rls_profile() {
    // Units: seconds. Derivation (DESIGN.md sec. 2 + EXPERIMENTS.md):
    //  * per-iteration device times follow rls_flops(s) at the effective
    //    single-core rates of a Xeon 8160 core under framework dispatch
    //    (~30 us/op * 10 ops/iter included);
    //  * accelerator per-iteration times are launch-bound for s = 50/75 and
    //    compute-efficient for s = 300 (GPU wins only on the large task);
    //  * staging costs grow with the task's working set; exiting the chain
    //    from the accelerator costs one result readback.
    std::vector<TaskTiming> timings = {
        // L1, size 50: GPU launch-bound, offload loses ~2.5x.
        TaskTiming{0.42e-3, 1.06e-3, 0.4e-3, 0.8e-3, 0.0},
        // L2, size 75: GPU still launch-bound, offload loses ~1.5x.
        TaskTiming{0.74e-3, 1.12e-3, 0.4e-3, 0.8e-3, 0.0},
        // L3, size 300: GPU wins per-iteration; staging is size-dependent.
        TaskTiming{3.26e-3, 2.46e-3, 3.4e-3, 4.4e-3, 0.0},
    };
    return CalibratedProfile("paper-rls(xeon8160+p100,tf2.1)", std::move(timings),
                             1.0e-3);
}

CalibratedProfile fig1b_profile() {
    // Units: seconds. Figure 1b regime (two-loop GEMM chain, aggregate
    // loops => iters = 1):
    //  * L1 offload wins big (50 ms -> ~2.4 ms);
    //  * L2 offload loses slightly: the streamed 800 MB cost marginally
    //    exceeds the GPU compute gain (paper Sec. I);
    //  * running L2 on the accelerator right after L1-on-accelerator is
    //    slower still (+4.5 ms): framework memory-pool interference, the
    //    mechanism that separates AA from AD while DD ~ DA stays equivalent.
    std::vector<TaskTiming> timings = {
        TaskTiming{50.0e-3, 2.0e-3, 0.4e-3, 0.5e-3, 0.0},
        TaskTiming{80.0e-3, 80.1e-3, 0.5e-3, 0.5e-3, 4.5e-3},
    };
    return CalibratedProfile("fig1b-two-loop(xeon8160+p100,tf2.1)",
                             std::move(timings), 0.5e-3);
}

} // namespace relperf::sim
