#include "sim/executor.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace relperf::sim {

using workloads::Placement;

SimulatedExecutor::SimulatedExecutor(const CostModel& model, NoiseModel noise)
    : model_(model), noise_(noise) {
    noise_.validate();
}

TimeBreakdown SimulatedExecutor::simulate(
    const workloads::TaskChain& chain,
    const workloads::VariantAssignment& variant, stats::Rng* rng) const {
    RELPERF_REQUIRE(chain.size() == variant.size(),
                    "SimulatedExecutor: assignment length must match chain length");

    const auto perturb = [&](double mean) {
        if (rng == nullptr || mean == 0.0) return mean;
        return mean * noise_.sample_factor(*rng);
    };

    TimeBreakdown out;
    Placement prev = Placement::Device; // chains are invoked from the edge
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Placement p = variant.at(i).placement;
        const TaskTimeParts parts = model_.task_parts(chain, i, p, prev);
        // The backend axis scales compute only: a different kernel
        // implementation changes arithmetic throughput, not data movement.
        const double multiplier =
            model_.backend_multiplier(variant.resolved_backend(i, chain.backend), p);
        const double compute = perturb(parts.compute_s * multiplier);
        const double staging = perturb(parts.staging_s);
        if (p == Placement::Device) {
            out.device_busy_s += compute;
        } else {
            out.accelerator_busy_s += compute;
        }
        out.link_busy_s += staging;
        out.total_s += compute + staging;
        prev = p;
    }
    const double exit_cost = perturb(model_.exit_seconds(chain, prev));
    out.link_busy_s += exit_cost;
    out.total_s += exit_cost;
    return out;
}

TimeBreakdown SimulatedExecutor::run_once(const workloads::TaskChain& chain,
                                          const workloads::DeviceAssignment& assignment,
                                          stats::Rng& rng) const {
    return simulate(chain, workloads::VariantAssignment(assignment), &rng);
}

TimeBreakdown SimulatedExecutor::run_once(const workloads::TaskChain& chain,
                                          const workloads::VariantAssignment& variant,
                                          stats::Rng& rng) const {
    return simulate(chain, variant, &rng);
}

std::vector<double> SimulatedExecutor::measure(const workloads::TaskChain& chain,
                                               const workloads::DeviceAssignment& assignment,
                                               std::size_t n, stats::Rng& rng) const {
    return measure(chain, workloads::VariantAssignment(assignment), n, rng);
}

std::vector<double> SimulatedExecutor::measure(const workloads::TaskChain& chain,
                                               const workloads::VariantAssignment& variant,
                                               std::size_t n, stats::Rng& rng) const {
    RELPERF_REQUIRE(n > 0, "SimulatedExecutor: need at least one measurement");
    obs::Span span("sim.measure", "executor");
    if (span.armed()) {
        // alg_name() allocates; build it only when the span records.
        span.arg("alg", variant.alg_name());
    }
    span.arg("n", static_cast<std::uint64_t>(n));
    obs::metrics().executions_total.inc(n);
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        samples.push_back(run_once(chain, variant, rng).total_s);
    }
    return samples;
}

double SimulatedExecutor::expected_seconds(
    const workloads::TaskChain& chain,
    const workloads::DeviceAssignment& assignment) const {
    return simulate(chain, workloads::VariantAssignment(assignment), nullptr)
        .total_s;
}

double SimulatedExecutor::expected_seconds(
    const workloads::TaskChain& chain,
    const workloads::VariantAssignment& variant) const {
    return simulate(chain, variant, nullptr).total_s;
}

TimeBreakdown SimulatedExecutor::expected_breakdown(
    const workloads::TaskChain& chain,
    const workloads::DeviceAssignment& assignment) const {
    return simulate(chain, workloads::VariantAssignment(assignment), nullptr);
}

TimeBreakdown SimulatedExecutor::expected_breakdown(
    const workloads::TaskChain& chain,
    const workloads::VariantAssignment& variant) const {
    return simulate(chain, variant, nullptr);
}

} // namespace relperf::sim
