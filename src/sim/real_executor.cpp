#include "sim/real_executor.hpp"

#include "linalg/backend.hpp"
#include "linalg/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "workloads/mathtask.hpp"
#include "workloads/task.hpp"

#include <chrono>
#include <optional>
#include <thread>

namespace relperf::sim {

using workloads::Placement;

namespace {

/// Restores the raw gemm thread setting on scope exit, so a throwing task
/// cannot leak the per-device clamp into the process-wide setting (other
/// shard workers would measure under the wrong clamp).
class ThreadSettingRestorer {
public:
    ThreadSettingRestorer() : saved_(linalg::gemm_thread_setting()) {}
    ~ThreadSettingRestorer() { linalg::set_gemm_threads(saved_); }
    ThreadSettingRestorer(const ThreadSettingRestorer&) = delete;
    ThreadSettingRestorer& operator=(const ThreadSettingRestorer&) = delete;

private:
    int saved_;
};

/// Stream id of the warmup rng derived from each measurement stream. Any
/// fixed value works as long as nothing else derives children from the
/// per-assignment streams (the sharder derives children of the *master*).
constexpr std::uint64_t kWarmupStream = 0x57A12A11ULL;

void busy_or_sleep(double seconds) {
    if (seconds <= 0.0) return;
    if (seconds < 50e-6) {
        // Short delays: spin for accuracy (sleep granularity is too coarse).
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::duration<double>(seconds);
        while (std::chrono::steady_clock::now() < until) {
        }
    } else {
        std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
}

} // namespace

RealExecutor::RealExecutor(EmulatedDevice device, EmulatedDevice accelerator)
    : device_(device), accelerator_(accelerator) {
    RELPERF_REQUIRE(device_.threads >= 0 && accelerator_.threads >= 0,
                    "RealExecutor: thread counts must be >= 0 (0 = all)");
    RELPERF_REQUIRE(device_.dispatch_delay_s >= 0.0 &&
                        accelerator_.dispatch_delay_s >= 0.0,
                    "RealExecutor: dispatch delays must be >= 0");
}

double RealExecutor::run_once(const workloads::TaskChain& chain,
                              const workloads::DeviceAssignment& assignment,
                              stats::Rng& rng) const {
    return run_once(chain, workloads::VariantAssignment(assignment), rng);
}

double RealExecutor::run_once(const workloads::TaskChain& chain,
                              const workloads::VariantAssignment& variant,
                              stats::Rng& rng) const {
    RELPERF_REQUIRE(chain.size() == variant.size(),
                    "RealExecutor: assignment length must match chain length");
    // Save the raw setting (not the resolved team size): restoring a
    // resolved value would silently pin "library default" (0) to whatever
    // the machine width was during this run.
    const ThreadSettingRestorer restore_threads;

    // The backends are part of what is being measured; resolve them all
    // before the clock starts so registry lookups (and their mutex) never
    // land inside the timed region. nullptr = inherit the ambient backend.
    std::vector<const linalg::Backend*> task_backends(chain.size(), nullptr);
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::string& name = variant.resolved_backend(i, chain.backend);
        if (!name.empty()) task_backends[i] = &linalg::backend(name);
    }

    const auto start = std::chrono::steady_clock::now();
    double carry = 0.0;
    Placement prev = Placement::Device;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Placement p = variant.at(i).placement;
        const EmulatedDevice& emu =
            p == Placement::Device ? device_ : accelerator_;
        if (p != prev) busy_or_sleep(emu.switch_delay_s);
        linalg::set_gemm_threads(emu.threads);

        // Artificial per-launch dispatch overhead, applied up front (the sum
        // is what matters for the total; interleaving would not change it).
        const workloads::TaskCost cost = workloads::task_cost(chain.tasks[i]);
        busy_or_sleep(cost.op_launches * emu.dispatch_delay_s);

        // Enter this task's backend for exactly this task: a per-task policy
        // is what the variant's algorithm name promises was measured.
        std::optional<linalg::ScopedBackend> scope;
        if (task_backends[i] != nullptr) scope.emplace(*task_backends[i]);
        carry = workloads::run_task(chain.tasks[i], carry, rng);
        prev = p;
    }
    if (prev == Placement::Accelerator) busy_or_sleep(device_.switch_delay_s);
    const auto stop = std::chrono::steady_clock::now();

    (void)carry; // the scalar result is intentionally unused: timing only
    return std::chrono::duration<double>(stop - start).count();
}

std::vector<double> RealExecutor::measure(const workloads::TaskChain& chain,
                                          const workloads::DeviceAssignment& assignment,
                                          std::size_t n, stats::Rng& rng,
                                          std::size_t warmup) const {
    return measure(chain, workloads::VariantAssignment(assignment), n, rng,
                   warmup);
}

std::vector<double> RealExecutor::measure(const workloads::TaskChain& chain,
                                          const workloads::VariantAssignment& variant,
                                          std::size_t n, stats::Rng& rng,
                                          std::size_t warmup) const {
    RELPERF_REQUIRE(n > 0, "RealExecutor: need at least one measurement");
    // The span brackets the whole batch (warmup included) from outside the
    // per-sample steady_clock reads, so enabling tracing perturbs no sample.
    obs::Span span("real.measure", "executor");
    if (span.armed()) span.arg("alg", variant.alg_name());
    span.arg("n", static_cast<std::uint64_t>(n))
        .arg("warmup", static_cast<std::uint64_t>(warmup));
    obs::metrics().executions_total.inc(n + warmup);
    // Warmup runs are hoisted onto their own stream, derived from the
    // measurement stream's seed but never advancing it: the measured values
    // consume the identical stream prefix for every warmup count, so warmup
    // is pure cache/codepath heating and cannot shift what is measured.
    if (warmup > 0) {
        stats::Rng warmup_rng = rng.child(kWarmupStream);
        for (std::size_t i = 0; i < warmup; ++i) {
            (void)run_once(chain, variant, warmup_rng);
        }
    }
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        out.push_back(run_once(chain, variant, rng));
    }
    return out;
}

} // namespace relperf::sim
