#pragma once
//! \file executor.hpp
//! The simulated measurement apparatus: executes a (chain, assignment) pair
//! under a deterministic CostModel with stochastic NoiseModel perturbation,
//! producing the execution-time *distributions* the relative-performance
//! methodology consumes.
//!
//! Assignments come in two flavors: the paper's plain DeviceAssignment
//! (placement only) and the per-task VariantAssignment (placement × linalg
//! backend). A variant's backend scales the compute part of each task by the
//! cost model's backend_multiplier; the portable/inherit multiplier is 1.0,
//! so plain assignments — and variants whose backends all multiply by 1.0 —
//! simulate bit-identically to the pre-variant executor.

#include "sim/cost_model.hpp"
#include "sim/noise.hpp"
#include "stats/rng.hpp"

#include <vector>

namespace relperf::sim {

/// Where the sampled wall-clock time of one run was spent.
struct TimeBreakdown {
    double total_s = 0.0;
    double device_busy_s = 0.0;      ///< Edge device computing.
    double accelerator_busy_s = 0.0; ///< Accelerator computing.
    double link_busy_s = 0.0;        ///< Staging / readback on the link.
};

/// Simulated executor. Stateless apart from its models; all randomness flows
/// through the caller-provided Rng, so runs are reproducible.
class SimulatedExecutor {
public:
    SimulatedExecutor(const CostModel& model, NoiseModel noise);

    /// One stochastic run; each deterministic cost component is perturbed by
    /// an independent mean-one noise factor.
    [[nodiscard]] TimeBreakdown run_once(const workloads::TaskChain& chain,
                                         const workloads::DeviceAssignment& assignment,
                                         stats::Rng& rng) const;
    [[nodiscard]] TimeBreakdown run_once(const workloads::TaskChain& chain,
                                         const workloads::VariantAssignment& variant,
                                         stats::Rng& rng) const;

    /// `n` measurements of total wall-clock seconds (the paper's N).
    [[nodiscard]] std::vector<double> measure(const workloads::TaskChain& chain,
                                              const workloads::DeviceAssignment& assignment,
                                              std::size_t n, stats::Rng& rng) const;
    [[nodiscard]] std::vector<double> measure(const workloads::TaskChain& chain,
                                              const workloads::VariantAssignment& variant,
                                              std::size_t n, stats::Rng& rng) const;

    /// Noise-free expected wall-clock seconds (calibration/test oracle).
    [[nodiscard]] double expected_seconds(const workloads::TaskChain& chain,
                                          const workloads::DeviceAssignment& assignment) const;
    [[nodiscard]] double expected_seconds(const workloads::TaskChain& chain,
                                          const workloads::VariantAssignment& variant) const;

    /// Noise-free expected breakdown.
    [[nodiscard]] TimeBreakdown expected_breakdown(
        const workloads::TaskChain& chain,
        const workloads::DeviceAssignment& assignment) const;
    [[nodiscard]] TimeBreakdown expected_breakdown(
        const workloads::TaskChain& chain,
        const workloads::VariantAssignment& variant) const;

    [[nodiscard]] const CostModel& model() const noexcept { return model_; }
    [[nodiscard]] const NoiseModel& noise() const noexcept { return noise_; }

private:
    TimeBreakdown simulate(const workloads::TaskChain& chain,
                           const workloads::VariantAssignment& variant,
                           stats::Rng* rng) const;

    const CostModel& model_;
    NoiseModel noise_;
};

} // namespace relperf::sim
