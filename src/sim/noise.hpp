#pragma once
//! \file noise.hpp
//! Stochastic measurement noise. The paper's methodology exists *because*
//! repeated measurements fluctuate (Sec. I, refs [2]-[5]); the simulator
//! therefore perturbs every deterministic cost component with a mean-one
//! multiplicative lognormal body plus occasional heavy-tailed latency spikes
//! (OS jitter, SMIs, network retries).

#include "stats/rng.hpp"

namespace relperf::sim {

/// Multiplicative noise model applied independently to each cost component.
struct NoiseModel {
    /// Lognormal sigma of the noise body (relative fluctuation, ~8 % default).
    double sigma_log = 0.08;
    /// Probability that a component suffers a latency spike.
    double spike_prob = 0.02;
    /// Spike magnitude as a fraction of the component mean.
    double spike_scale = 0.25;
    /// Pareto tail exponent of spike magnitudes (must be > 1).
    double spike_tail = 2.5;

    /// Draws one multiplicative factor. The lognormal body has mean exactly 1
    /// (mu = -sigma^2/2); spikes add positive skew with expected inflation
    /// spike_prob * spike_scale / (spike_tail - 1).
    [[nodiscard]] double sample_factor(stats::Rng& rng) const;

    /// Noise-free model (for deterministic expectations in tests).
    [[nodiscard]] static NoiseModel none() noexcept {
        return NoiseModel{0.0, 0.0, 0.0, 2.5};
    }

    /// Throws InvalidArgument when parameters are out of range.
    void validate() const;
};

} // namespace relperf::sim
