#pragma once
//! \file energy.hpp
//! Energy accounting for the Section IV selection criteria: given the time
//! breakdown of a run and a Platform's wattages, computes per-component
//! joules. The paper uses FLOPs-on-device as an energy proxy; the model here
//! additionally provides physical joules so decision policies can be tested
//! against both criteria.

#include "sim/executor.hpp"
#include "sim/spec.hpp"

namespace relperf::sim {

/// Joules attributed to each platform component for one run.
struct EnergyBreakdown {
    double device_j = 0.0;
    double accelerator_j = 0.0;
    double link_j = 0.0;

    [[nodiscard]] double total() const noexcept {
        return device_j + accelerator_j + link_j;
    }
};

/// Maps TimeBreakdowns to joules using active/idle wattages: every component
/// draws idle power for the whole run and the active-minus-idle delta while
/// busy.
class EnergyModel {
public:
    explicit EnergyModel(Platform platform);

    [[nodiscard]] EnergyBreakdown energy(const TimeBreakdown& time) const;

    /// Energy of the edge device only — the quantity the paper's
    /// energy-constrained switching policy monitors.
    [[nodiscard]] double device_energy(const TimeBreakdown& time) const {
        return energy(time).device_j;
    }

    [[nodiscard]] const Platform& platform() const noexcept { return platform_; }

private:
    Platform platform_;
};

} // namespace relperf::sim
