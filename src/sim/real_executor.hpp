#pragma once
//! \file real_executor.hpp
//! Measured (wall-clock) execution of chains on *this* machine, following the
//! paper's own recipe for emulating heterogeneous devices (footnote 2):
//! "adding artificial delays and controlling the number of threads".
//!
//! The edge Device is emulated with a small OpenMP team (default 1 thread)
//! and the Accelerator with the full machine plus a per-launch dispatch delay
//! — producing genuinely noisy, genuinely heterogeneous measurement
//! distributions without any simulator.
//!
//! Variant assignments select the linalg backend *per task* (ScopedBackend is
//! entered around each task rather than once per run), so "L1 on portable,
//! L2 offloaded on vendor BLAS" is measured exactly as written. Backends are
//! resolved before the clock starts; a task with no policy backend runs on
//! the chain's default backend, and with neither on the ambient backend.

#include "stats/rng.hpp"
#include "workloads/chain.hpp"

#include <vector>

namespace relperf::sim {

/// Thread/delay emulation of one device.
struct EmulatedDevice {
    int threads = 1;               ///< OpenMP team; 0 = all hardware threads.
    double dispatch_delay_s = 0.0; ///< Artificial per-kernel-launch delay.
    double switch_delay_s = 0.0;   ///< Artificial delay when entering this device.
};

/// Executes chains for real and measures wall-clock time.
class RealExecutor {
public:
    RealExecutor(EmulatedDevice device, EmulatedDevice accelerator);

    /// Runs (chain, assignment) once; returns wall-clock seconds.
    [[nodiscard]] double run_once(const workloads::TaskChain& chain,
                                  const workloads::DeviceAssignment& assignment,
                                  stats::Rng& rng) const;
    [[nodiscard]] double run_once(const workloads::TaskChain& chain,
                                  const workloads::VariantAssignment& variant,
                                  stats::Rng& rng) const;

    /// `n` wall-clock measurements, with `warmup` unrecorded runs first.
    /// Warmup runs execute on a hoisted child stream and never consume the
    /// measurement stream: the measured runs draw the identical prefix of
    /// `rng` for every warmup count.
    [[nodiscard]] std::vector<double> measure(const workloads::TaskChain& chain,
                                              const workloads::DeviceAssignment& assignment,
                                              std::size_t n, stats::Rng& rng,
                                              std::size_t warmup = 1) const;
    [[nodiscard]] std::vector<double> measure(const workloads::TaskChain& chain,
                                              const workloads::VariantAssignment& variant,
                                              std::size_t n, stats::Rng& rng,
                                              std::size_t warmup = 1) const;

private:
    EmulatedDevice device_;
    EmulatedDevice accelerator_;
};

} // namespace relperf::sim
