#include "sim/spec.hpp"

namespace relperf::sim {

EfficiencyCurve::EfficiencyCurve(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
    RELPERF_REQUIRE(!points_.empty(), "EfficiencyCurve: need at least one point");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        RELPERF_REQUIRE(points_[i].second > 0.0 && points_[i].second <= 1.0,
                        "EfficiencyCurve: fractions must be in (0, 1]");
        if (i > 0) {
            RELPERF_REQUIRE(points_[i].first > points_[i - 1].first,
                            "EfficiencyCurve: sizes must be strictly ascending");
        }
    }
}

EfficiencyCurve EfficiencyCurve::flat(double fraction) {
    return EfficiencyCurve({{1.0, fraction}});
}

double EfficiencyCurve::at(double size) const {
    if (size <= points_.front().first) return points_.front().second;
    if (size >= points_.back().first) return points_.back().second;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (size <= points_[i].first) {
            const auto& [x0, y0] = points_[i - 1];
            const auto& [x1, y1] = points_[i];
            const double t = (size - x0) / (x1 - x0);
            return y0 + t * (y1 - y0);
        }
    }
    return points_.back().second; // unreachable
}

const char* to_string(DeviceKind kind) noexcept {
    switch (kind) {
        case DeviceKind::CpuCore: return "cpu-core";
        case DeviceKind::Gpu: return "gpu";
        case DeviceKind::RaspberryPi: return "raspberry-pi";
        case DeviceKind::Smartphone: return "smartphone";
        case DeviceKind::Server: return "server";
    }
    return "?";
}

void DeviceSpec::validate() const {
    RELPERF_REQUIRE(peak_gflops > 0.0, "DeviceSpec: peak_gflops must be positive");
    RELPERF_REQUIRE(dispatch_overhead_s >= 0.0,
                    "DeviceSpec: dispatch overhead must be >= 0");
    RELPERF_REQUIRE(active_watts >= idle_watts && idle_watts >= 0.0,
                    "DeviceSpec: watts must satisfy active >= idle >= 0");
}

void LinkSpec::validate() const {
    RELPERF_REQUIRE(bandwidth_gbps > 0.0, "LinkSpec: bandwidth must be positive");
    RELPERF_REQUIRE(latency_s >= 0.0, "LinkSpec: latency must be >= 0");
    RELPERF_REQUIRE(active_watts >= 0.0, "LinkSpec: watts must be >= 0");
}

double LinkSpec::transfer_seconds(double bytes) const {
    RELPERF_REQUIRE(bytes >= 0.0, "LinkSpec: bytes must be >= 0");
    return latency_s + bytes / (bandwidth_gbps * 1e9);
}

double BackendGains::device_multiplier(const std::string& backend) const noexcept {
    for (const BackendGain& gain : entries) {
        if (gain.backend == backend) return gain.device;
    }
    return 1.0;
}

double BackendGains::accelerator_multiplier(
    const std::string& backend) const noexcept {
    for (const BackendGain& gain : entries) {
        if (gain.backend == backend) return gain.accelerator;
    }
    return 1.0;
}

void BackendGains::validate() const {
    for (std::size_t i = 0; i < entries.size(); ++i) {
        RELPERF_REQUIRE(!entries[i].backend.empty(),
                        "BackendGains: backend name must not be empty");
        RELPERF_REQUIRE(entries[i].device > 0.0 && entries[i].accelerator > 0.0,
                        "BackendGains: multipliers must be positive");
        for (std::size_t j = i + 1; j < entries.size(); ++j) {
            RELPERF_REQUIRE(entries[i].backend != entries[j].backend,
                            "BackendGains: duplicate backend '" +
                                entries[i].backend + "'");
        }
    }
}

void Platform::validate() const {
    device.validate();
    accelerator.validate();
    link.validate();
    backend_gains.validate();
}

Platform paper_cpu_gpu_platform() {
    Platform p;
    p.name = "xeon8160-core+p100";
    p.device = DeviceSpec{
        "xeon8160-1core",
        DeviceKind::CpuCore,
        80.0,   // AVX-512 core peak
        30e-6,  // framework-level op dispatch (TF-eager-like)
        15.0,
        3.0,
        EfficiencyCurve({{16, 0.02}, {50, 0.028}, {75, 0.06}, {150, 0.3},
                         {300, 0.9}, {2048, 1.0}}),
    };
    p.accelerator = DeviceSpec{
        "p100",
        DeviceKind::Gpu,
        4700.0, // fp64 peak
        60e-6,  // GPU kernel launch via framework
        250.0,
        30.0,
        EfficiencyCurve({{32, 0.0005}, {64, 0.001}, {128, 0.004}, {300, 0.02},
                         {512, 0.08}, {1024, 0.3}, {4096, 1.0}}),
    };
    p.link = LinkSpec{10.0, 20e-6, 8.0};
    p.validate();
    return p;
}

Platform rpi_server_platform() {
    Platform p;
    p.name = "raspberry-pi+lan-server";
    p.device = DeviceSpec{
        "rpi4-core",
        DeviceKind::RaspberryPi,
        6.0,
        4e-6,
        4.0,
        1.5,
        EfficiencyCurve({{16, 0.05}, {64, 0.25}, {256, 0.7}, {1024, 0.9}}),
    };
    p.accelerator = DeviceSpec{
        "lan-server",
        DeviceKind::Server,
        600.0,
        15e-6,
        120.0,
        40.0,
        EfficiencyCurve({{16, 0.01}, {64, 0.05}, {256, 0.4}, {1024, 0.9},
                         {4096, 1.0}}),
    };
    // Gigabit Ethernet: ~0.11 GB/s effective, millisecond-scale latency.
    p.link = LinkSpec{0.11, 1.2e-3, 3.0};
    p.validate();
    return p;
}

Platform smartphone_gpu_platform() {
    Platform p;
    p.name = "smartphone-big-core+mobile-gpu";
    p.device = DeviceSpec{
        "phone-big-core",
        DeviceKind::Smartphone,
        25.0,
        8e-6,
        3.0,
        0.8,
        EfficiencyCurve({{16, 0.04}, {64, 0.2}, {256, 0.6}, {1024, 0.85}}),
    };
    p.accelerator = DeviceSpec{
        "mobile-gpu",
        DeviceKind::Gpu,
        180.0,
        90e-6,
        4.5,
        0.9,
        EfficiencyCurve({{32, 0.002}, {128, 0.02}, {512, 0.2}, {2048, 0.8}}),
    };
    // Shared SoC memory: fast, low latency.
    p.link = LinkSpec{25.0, 8e-6, 1.0};
    p.validate();
    return p;
}

Platform cpu_only_platform() {
    Platform p;
    p.name = "cpu-core+cpu-core";
    const DeviceSpec core{
        "cpu-core",
        DeviceKind::CpuCore,
        50.0,
        2e-6,
        12.0,
        2.5,
        EfficiencyCurve({{16, 0.05}, {64, 0.3}, {256, 0.8}, {1024, 1.0}}),
    };
    p.device = core;
    p.accelerator = core;
    p.accelerator.name = "cpu-core-2";
    // Cross-core "link": shared memory.
    p.link = LinkSpec{30.0, 2e-6, 0.5};
    p.validate();
    return p;
}

} // namespace relperf::sim
