#pragma once
//! \file analytic.hpp
//! First-principles cost model: derives task times from a Platform
//! description (peak rates, efficiency curves, dispatch overheads, link
//! bandwidth/latency) and the workload footprint (task_cost). Used for the
//! non-paper platforms (Raspberry Pi, smartphone, ...) and the platform-sweep
//! ablation; the paper experiments use the CalibratedProfile instead.

#include "sim/cost_model.hpp"
#include "sim/spec.hpp"

namespace relperf::sim {

class AnalyticCostModel final : public CostModel {
public:
    explicit AnalyticCostModel(Platform platform);

    [[nodiscard]] TaskTimeParts task_parts(const workloads::TaskChain& chain,
                                           std::size_t index, workloads::Placement p,
                                           workloads::Placement prev) const override;

    [[nodiscard]] double exit_seconds(const workloads::TaskChain& chain,
                                      workloads::Placement last) const override;

    /// The platform's BackendGains entry for `backend` (1.0 when absent).
    [[nodiscard]] double backend_multiplier(const std::string& backend,
                                            workloads::Placement p) const override;

    [[nodiscard]] std::string name() const override;

    [[nodiscard]] const Platform& platform() const noexcept { return platform_; }

private:
    Platform platform_;
};

} // namespace relperf::sim
