#pragma once
//! \file spec.hpp
//! Hardware descriptions for the analytic cost model: devices (edge CPU,
//! GPU, Raspberry Pi, smartphone, server) and the interconnect between the
//! edge device and its accelerator.

#include "support/error.hpp"

#include <string>
#include <utility>
#include <vector>

namespace relperf::sim {

/// Size-dependent fraction of peak throughput. Small kernels run far below
/// peak (dispatch-bound, cache-unfriendly); the curve is piecewise-linear in
/// the problem size with clamped ends.
class EfficiencyCurve {
public:
    /// Points (size, fraction in (0, 1]) sorted by ascending size.
    explicit EfficiencyCurve(std::vector<std::pair<double, double>> points);

    /// Constant efficiency at every size.
    [[nodiscard]] static EfficiencyCurve flat(double fraction);

    /// Interpolated fraction of peak at `size` (clamped outside the range).
    [[nodiscard]] double at(double size) const;

private:
    std::vector<std::pair<double, double>> points_;
};

/// Broad device category (drives presets and report labels only).
enum class DeviceKind { CpuCore, Gpu, RaspberryPi, Smartphone, Server };

[[nodiscard]] const char* to_string(DeviceKind kind) noexcept;

/// One compute device.
struct DeviceSpec {
    std::string name;
    DeviceKind kind = DeviceKind::CpuCore;
    double peak_gflops = 1.0;          ///< Peak arithmetic rate.
    double dispatch_overhead_s = 1e-6; ///< Cost per kernel launch.
    double active_watts = 10.0;        ///< Power while computing.
    double idle_watts = 1.0;           ///< Power while idle.
    EfficiencyCurve efficiency = EfficiencyCurve::flat(1.0);

    void validate() const;
};

/// The device <-> accelerator interconnect.
struct LinkSpec {
    double bandwidth_gbps = 10.0; ///< GB/s (decimal).
    double latency_s = 20e-6;     ///< Per-crossing latency.
    double active_watts = 5.0;    ///< Power while transferring.

    void validate() const;

    /// Seconds to move `bytes` across the link (one latency included).
    [[nodiscard]] double transfer_seconds(double bytes) const;
};

/// Per-backend compute-time multipliers — how much slower (>1) or faster
/// (<1) a linalg backend runs the same math on each side of the platform,
/// relative to the baseline the efficiency curves describe. Backends without
/// an entry (and the empty "inherit" backend) multiply by exactly 1.0, so a
/// platform with no gains prices every variant identically to the
/// pre-variant cost model.
struct BackendGain {
    std::string backend;        ///< linalg backend name, e.g. "blas".
    double device = 1.0;        ///< Compute-time multiplier on the Device.
    double accelerator = 1.0;   ///< Compute-time multiplier on the Accelerator.
};

struct BackendGains {
    std::vector<BackendGain> entries;

    /// Multiplier of `backend` on the given side; 1.0 when absent or empty.
    [[nodiscard]] double device_multiplier(const std::string& backend) const noexcept;
    [[nodiscard]] double accelerator_multiplier(const std::string& backend) const noexcept;

    /// Throws InvalidArgument on non-positive multipliers, empty or duplicate
    /// backend names.
    void validate() const;
};

/// A complete two-node edge platform.
struct Platform {
    std::string name;
    DeviceSpec device;      ///< The edge device (data home).
    DeviceSpec accelerator; ///< The offload target.
    LinkSpec link;
    BackendGains backend_gains; ///< Empty = every backend at 1.0.

    void validate() const;
};

/// Presets. Numbers are representative, not vendor-measured; the *paper*
/// experiments use the CalibratedProfile instead (see profile.hpp).
[[nodiscard]] Platform paper_cpu_gpu_platform(); ///< Xeon-8160-core + P100-like.
[[nodiscard]] Platform rpi_server_platform();    ///< Raspberry Pi + LAN server.
[[nodiscard]] Platform smartphone_gpu_platform();///< Phone big core + mobile GPU.
[[nodiscard]] Platform cpu_only_platform();      ///< Accelerator == second core.

} // namespace relperf::sim
