#include "sim/noise.hpp"

#include "support/error.hpp"

namespace relperf::sim {

void NoiseModel::validate() const {
    RELPERF_REQUIRE(sigma_log >= 0.0, "NoiseModel: sigma_log must be >= 0");
    RELPERF_REQUIRE(spike_prob >= 0.0 && spike_prob <= 1.0,
                    "NoiseModel: spike_prob must be in [0,1]");
    RELPERF_REQUIRE(spike_scale >= 0.0, "NoiseModel: spike_scale must be >= 0");
    RELPERF_REQUIRE(spike_tail > 1.0, "NoiseModel: spike_tail must exceed 1");
}

double NoiseModel::sample_factor(stats::Rng& rng) const {
    double factor = 1.0;
    if (sigma_log > 0.0) {
        factor = rng.lognormal(-0.5 * sigma_log * sigma_log, sigma_log);
    }
    if (spike_prob > 0.0 && rng.bernoulli(spike_prob)) {
        // pareto(1, tail) - 1 >= 0; scaled to a fraction of the mean cost.
        factor += spike_scale * (rng.pareto(1.0, spike_tail) - 1.0);
    }
    return factor;
}

} // namespace relperf::sim
