#include "sim/energy.hpp"

#include "support/error.hpp"

namespace relperf::sim {

EnergyModel::EnergyModel(Platform platform) : platform_(std::move(platform)) {
    platform_.validate();
}

EnergyBreakdown EnergyModel::energy(const TimeBreakdown& time) const {
    RELPERF_REQUIRE(time.total_s >= 0.0, "EnergyModel: negative run time");
    RELPERF_REQUIRE(time.device_busy_s <= time.total_s &&
                        time.accelerator_busy_s <= time.total_s &&
                        time.link_busy_s <= time.total_s,
                    "EnergyModel: component busy time exceeds total");

    const auto component = [&](double idle_w, double active_w, double busy_s) {
        return idle_w * time.total_s + (active_w - idle_w) * busy_s;
    };

    EnergyBreakdown e;
    e.device_j = component(platform_.device.idle_watts,
                           platform_.device.active_watts, time.device_busy_s);
    e.accelerator_j =
        component(platform_.accelerator.idle_watts,
                  platform_.accelerator.active_watts, time.accelerator_busy_s);
    e.link_j = component(0.0, platform_.link.active_watts, time.link_busy_s);
    return e;
}

} // namespace relperf::sim
