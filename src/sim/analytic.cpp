#include "sim/analytic.hpp"

#include "support/error.hpp"

namespace relperf::sim {

using workloads::Placement;
using workloads::TaskCost;

AnalyticCostModel::AnalyticCostModel(Platform platform)
    : platform_(std::move(platform)) {
    platform_.validate();
}

TaskTimeParts AnalyticCostModel::task_parts(const workloads::TaskChain& chain,
                                            std::size_t index, Placement p,
                                            Placement prev) const {
    RELPERF_REQUIRE(index < chain.size(), "AnalyticCostModel: task index out of range");
    const workloads::TaskSpec& spec = chain.tasks[index];
    const TaskCost cost = workloads::task_cost(spec);
    const DeviceSpec& dev =
        p == Placement::Device ? platform_.device : platform_.accelerator;

    TaskTimeParts parts;
    const double rate =
        dev.peak_gflops * 1e9 * dev.efficiency.at(static_cast<double>(spec.size));
    parts.compute_s = cost.flops / rate + cost.op_launches * dev.dispatch_overhead_s;

    if (p == Placement::Accelerator) {
        // Remote execution streams the task's input/output footprint across
        // the link regardless of the predecessor (the data home is the edge
        // device), plus one extra round-trip when the chain switches devices.
        parts.staging_s =
            platform_.link.transfer_seconds(cost.bytes_in) +
            platform_.link.transfer_seconds(cost.bytes_out);
        if (prev == Placement::Device) {
            parts.staging_s += 2.0 * platform_.link.latency_s;
        }
    } else if (prev == Placement::Accelerator) {
        // Returning to the device: one control round-trip.
        parts.staging_s = 2.0 * platform_.link.latency_s;
    }
    return parts;
}

double AnalyticCostModel::backend_multiplier(const std::string& backend,
                                             Placement p) const {
    return p == Placement::Device
               ? platform_.backend_gains.device_multiplier(backend)
               : platform_.backend_gains.accelerator_multiplier(backend);
}

double AnalyticCostModel::exit_seconds(const workloads::TaskChain& chain,
                                       Placement last) const {
    (void)chain;
    return last == Placement::Accelerator ? 2.0 * platform_.link.latency_s : 0.0;
}

std::string AnalyticCostModel::name() const {
    return "analytic(" + platform_.name + ")";
}

} // namespace relperf::sim
