#pragma once
//! \file cost_model.hpp
//! Deterministic cost-model interface consumed by the SimulatedExecutor.
//!
//! A cost model answers: "how long does task `i` of this chain take, on this
//! placement, given where the previous task ran?" — the conditional structure
//! is essential: staging data onto a device you are already on is free, and
//! framework residency effects (memory-pool pressure, warm kernels) make task
//! times depend on the predecessor's placement (see DESIGN.md section 2).

#include "workloads/chain.hpp"

#include <string>

namespace relperf::sim {

/// Split of one task's mean cost into what runs on the placement's compute
/// resource versus what occupies the interconnect (staging).
struct TaskTimeParts {
    double compute_s = 0.0; ///< Attributed to the executing device.
    double staging_s = 0.0; ///< Attributed to the link.

    [[nodiscard]] double total() const noexcept { return compute_s + staging_s; }
};

/// Abstract deterministic cost model (means only; noise is layered on top by
/// the executor).
class CostModel {
public:
    virtual ~CostModel() = default;

    /// Mean cost parts of task `index` of `chain` when executed on `p`,
    /// with the previous task (or the chain entry) on `prev`.
    [[nodiscard]] virtual TaskTimeParts task_parts(const workloads::TaskChain& chain,
                                                   std::size_t index,
                                                   workloads::Placement p,
                                                   workloads::Placement prev) const = 0;

    /// Cost of returning control/results to the edge device after the final
    /// task finished on `last` (0 when the chain already ends on the device).
    [[nodiscard]] virtual double exit_seconds(const workloads::TaskChain& chain,
                                              workloads::Placement last) const = 0;

    /// Compute-time multiplier of running a task's kernels on `backend` at
    /// placement `p` — the per-backend throughput axis that prices mixed
    /// placement×backend variants. The base class returns 1.0 for every
    /// backend (including the empty "inherit" name), so cost models that
    /// ignore the axis price all variants identically to the plain placement
    /// algorithms. AnalyticCostModel overrides this with the platform's
    /// BackendGains. The multiplier applies to the compute part only; staging
    /// is data movement and does not depend on the kernel implementation.
    [[nodiscard]] virtual double backend_multiplier(const std::string& backend,
                                                    workloads::Placement p) const {
        (void)backend;
        (void)p;
        return 1.0;
    }

    /// Human-readable model name for reports.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Convenience: total mean seconds of one task.
    [[nodiscard]] double task_seconds(const workloads::TaskChain& chain,
                                      std::size_t index, workloads::Placement p,
                                      workloads::Placement prev) const {
        return task_parts(chain, index, p, prev).total();
    }
};

} // namespace relperf::sim
