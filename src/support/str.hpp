#pragma once
//! \file str.hpp
//! Small string/formatting helpers (libstdc++ 12 has no std::format yet).

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace relperf::str {

/// printf-style formatting into a std::string.
/// Only used with trusted format strings inside the library.
[[nodiscard]] std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Fixed-point rendering of a double with `digits` decimals (no locale).
[[nodiscard]] std::string fixed(double value, int digits);

/// Compact human rendering of a duration in seconds ("12.3 ms", "4.56 s").
[[nodiscard]] std::string human_seconds(double seconds);

/// Compact human rendering of a byte count ("3.2 MiB").
[[nodiscard]] std::string human_bytes(double bytes);

/// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Left/right padding to a minimum width (spaces).
[[nodiscard]] std::string pad_left(std::string_view text, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view text, std::size_t width);

/// Validated numeric parsing. Each helper throws relperf::InvalidArgument
/// naming `context` (e.g. "--sizes") when `text` is not entirely a number of
/// the requested shape — a clean CLI/config error instead of the
/// std::stoul/std::stod behaviour of silently accepting trailing junk or
/// calling std::terminate through an unhandled exception.
[[nodiscard]] std::size_t parse_size(std::string_view text, const std::string& context);
/// As parse_size, additionally rejecting 0 (for knobs where zero would
/// silently mean "off" or "default" instead of what was typed).
[[nodiscard]] std::size_t parse_positive_size(std::string_view text,
                                              const std::string& context);
[[nodiscard]] std::uint64_t parse_u64(std::string_view text, const std::string& context);
[[nodiscard]] double parse_double(std::string_view text, const std::string& context);

/// Parses a comma-separated list of non-negative integers ("64,256").
/// Fields are trimmed; empty fields, junk and an empty list are rejected.
[[nodiscard]] std::vector<std::size_t> parse_size_list(std::string_view text,
                                                       const std::string& context);

/// Parses a comma-separated list of names ("portable,blas"); fields are
/// trimmed, empty fields dropped. Throws InvalidArgument naming `context`
/// when no name remains (e.g. "", "," or ", ,").
[[nodiscard]] std::vector<std::string> parse_name_list(std::string_view text,
                                                       const std::string& context);

/// Streams any << -able value into a string.
template <typename T>
[[nodiscard]] std::string to_string(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
}

} // namespace relperf::str
