#pragma once
//! \file table.hpp
//! Minimal ASCII table renderer used by the benchmark harness and the report
//! module to print paper-shaped tables (e.g. Table I of the paper).

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::support {

/// Column alignment inside an AsciiTable.
enum class Align { Left, Right };

/// Builds fixed-width ASCII tables:
///
///     +---------+--------+
///     | Cluster | Score  |
///     +---------+--------+
///     | C1      |  1.000 |
///     +---------+--------+
///
/// Rows are strings; numeric formatting is the caller's responsibility
/// (see relperf::str::fixed).
class AsciiTable {
public:
    /// Creates a table with the given header row. The column count of every
    /// subsequent row must match the header.
    explicit AsciiTable(std::vector<std::string> header,
                        std::vector<Align> aligns = {});

    /// Appends a body row; throws InvalidArgument on column-count mismatch.
    void add_row(std::vector<std::string> row);

    /// Appends a horizontal separator line between body rows.
    void add_separator();

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the complete table, trailing newline included.
    [[nodiscard]] std::string render() const;

private:
    struct Row {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header_;
    std::vector<Align> aligns_;
    std::vector<Row> rows_;
};

} // namespace relperf::support
