#pragma once
//! \file csv.hpp
//! RFC-4180-ish CSV writer. Every bench binary can dump its series with
//! `--csv <path>` so plots can be regenerated outside of C++.

#include <fstream>
#include <string>
#include <vector>

namespace relperf::support {

/// Streams rows into a CSV file; fields containing separators/quotes/newlines
/// are quoted and inner quotes doubled.
class CsvWriter {
public:
    /// Opens (truncates) `path` and writes the header row immediately.
    /// Throws relperf::Error when the file cannot be opened.
    CsvWriter(const std::string& path, const std::vector<std::string>& header);

    /// Appends a data row; throws InvalidArgument on width mismatch.
    void add_row(const std::vector<std::string>& row);

    /// Convenience: formats doubles with maximum round-trip precision.
    void add_row_numeric(const std::string& key, const std::vector<double>& values);

    /// Flushes and closes; called by the destructor as well.
    void close();

    ~CsvWriter();
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

private:
    void write_row(const std::vector<std::string>& row);

    std::ofstream out_;
    std::size_t width_;
};

/// Escapes a single CSV field (exposed for unit tests).
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Splits one CSV line into fields, handling the quoting csv_escape produces
/// (quoted fields, doubled inner quotes) and stripping a trailing CR. The
/// inverse of write_row for a single line.
[[nodiscard]] std::vector<std::string> csv_split_row(const std::string& line);

} // namespace relperf::support
