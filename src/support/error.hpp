#pragma once
//! \file error.hpp
//! Error handling primitives shared by every relperf module.
//!
//! relperf reports *contract violations* (caller bugs) via
//! `relperf::InvalidArgument` and *internal invariant breaks* via
//! `relperf::InternalError`.  Both derive from `relperf::Error` so callers
//! can catch the whole library with one handler.

#include <stdexcept>
#include <string>

namespace relperf {

/// Base class of every exception thrown by relperf.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// A caller violated a documented precondition (bad size, empty sample, ...).
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what_arg) : Error(what_arg) {}
};

/// An internal invariant was violated; indicates a bug in relperf itself.
class InternalError : public Error {
public:
    explicit InternalError(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* file, int line, const std::string& msg);
[[noreturn]] void throw_internal_error(const char* file, int line, const std::string& msg);
} // namespace detail

} // namespace relperf

/// Precondition check: throws relperf::InvalidArgument when `cond` is false.
/// Active in all build types — argument validation is part of the API contract.
#define RELPERF_REQUIRE(cond, msg)                                                   \
    do {                                                                             \
        if (!(cond)) {                                                               \
            ::relperf::detail::throw_invalid_argument(__FILE__, __LINE__, (msg));    \
        }                                                                            \
    } while (false)

/// Internal invariant check: throws relperf::InternalError when `cond` is false.
#define RELPERF_ASSERT(cond, msg)                                                    \
    do {                                                                             \
        if (!(cond)) {                                                               \
            ::relperf::detail::throw_internal_error(__FILE__, __LINE__, (msg));      \
        }                                                                            \
    } while (false)
