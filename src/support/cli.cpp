#include "support/cli.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

#include <cstdlib>
#include <iostream>

namespace relperf::support {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)), out_(&std::cout) {}

void CliParser::set_output(std::ostream* out) {
    RELPERF_REQUIRE(out != nullptr, "CliParser: output stream must not be null");
    out_ = out;
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
    RELPERF_REQUIRE(!options_.count(name), "CliParser: duplicate option --" + name);
    options_[name] = Option{help, "", true, false};
    order_.push_back(name);
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
    RELPERF_REQUIRE(!options_.count(name), "CliParser: duplicate option --" + name);
    options_[name] = Option{help, default_value, false, false};
    order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            (*out_) << usage() << std::flush;
            return false;
        }
        RELPERF_REQUIRE(str::starts_with(arg, "--"),
                        "CliParser: positional arguments are not supported: " + arg);
        arg = arg.substr(2);

        std::string key = arg;
        std::optional<std::string> inline_value;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            inline_value = arg.substr(eq + 1);
        }

        const auto it = options_.find(key);
        RELPERF_REQUIRE(it != options_.end(), "CliParser: unknown option --" + key);
        Option& opt = it->second;

        if (opt.is_flag) {
            RELPERF_REQUIRE(!inline_value.has_value(),
                            "CliParser: flag --" + key + " takes no value");
            opt.flag_set = true;
        } else if (inline_value.has_value()) {
            opt.value = *inline_value;
        } else {
            RELPERF_REQUIRE(i + 1 < argc, "CliParser: option --" + key + " expects a value");
            opt.value = argv[++i];
        }
    }
    return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name) const {
    const auto it = options_.find(name);
    RELPERF_REQUIRE(it != options_.end(), "CliParser: undeclared option --" + name);
    return it->second;
}

bool CliParser::flag(const std::string& name) const {
    const Option& opt = lookup(name);
    RELPERF_REQUIRE(opt.is_flag, "CliParser: --" + name + " is not a flag");
    return opt.flag_set;
}

std::string CliParser::value(const std::string& name) const {
    const Option& opt = lookup(name);
    RELPERF_REQUIRE(!opt.is_flag, "CliParser: --" + name + " is a flag");
    return opt.value;
}

int CliParser::value_int(const std::string& name) const {
    const std::string v = value(name);
    char* end = nullptr;
    const long parsed = std::strtol(v.c_str(), &end, 10);
    RELPERF_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
                    "CliParser: --" + name + " expects an integer, got '" + v + "'");
    return static_cast<int>(parsed);
}

double CliParser::value_double(const std::string& name) const {
    const std::string v = value(name);
    char* end = nullptr;
    const double parsed = std::strtod(v.c_str(), &end);
    RELPERF_REQUIRE(end != nullptr && *end == '\0' && !v.empty(),
                    "CliParser: --" + name + " expects a number, got '" + v + "'");
    return parsed;
}

std::optional<std::string> CliParser::value_optional(const std::string& name) const {
    const std::string v = value(name);
    if (v.empty()) return std::nullopt;
    return v;
}

std::string CliParser::usage() const {
    std::string out = description_ + "\n\nOptions:\n";
    for (const std::string& name : order_) {
        const Option& opt = options_.at(name);
        std::string left = "  --" + name + (opt.is_flag ? "" : " <value>");
        out += str::pad_right(left, 30) + opt.help;
        if (!opt.is_flag && !opt.value.empty()) {
            out += " (default: " + opt.value + ")";
        }
        out += '\n';
    }
    out += "  --help                      print this message\n";
    return out;
}

} // namespace relperf::support
