#include "support/csv.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

namespace relperf::support {

std::string csv_escape(const std::string& field) {
    const bool needs_quote =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) return field;
    std::string out = "\"";
    for (const char c : field) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string> csv_split_row(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(std::move(field));
            field.clear();
        } else if (c != '\r') {
            field += c;
        }
    }
    fields.push_back(std::move(field));
    return fields;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
    RELPERF_REQUIRE(!header.empty(), "CsvWriter: header must be non-empty");
    if (!out_) {
        throw Error("CsvWriter: cannot open '" + path + "' for writing");
    }
    write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
    RELPERF_REQUIRE(row.size() == width_, "CsvWriter: row width mismatch");
    write_row(row);
}

void CsvWriter::add_row_numeric(const std::string& key, const std::vector<double>& values) {
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(key);
    for (const double v : values) row.push_back(str::format("%.17g", v));
    add_row(row);
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i != 0) out_ << ',';
        out_ << csv_escape(row[i]);
    }
    out_ << '\n';
}

void CsvWriter::close() {
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

CsvWriter::~CsvWriter() {
    close();
}

} // namespace relperf::support
