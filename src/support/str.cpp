#include "support/str.hpp"

#include "support/error.hpp"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace relperf::str {

namespace {

[[noreturn]] void bad_number(const std::string& context, std::string_view text,
                             const char* expected) {
    throw InvalidArgument(context + ": expected " + expected + ", got '" +
                          std::string(text) + "'");
}

} // namespace

std::size_t parse_size(std::string_view text, const std::string& context) {
    const std::uint64_t value = parse_u64(text, context);
    if (value > std::numeric_limits<std::size_t>::max()) {
        bad_number(context, text, "a representable non-negative integer");
    }
    return static_cast<std::size_t>(value);
}

std::size_t parse_positive_size(std::string_view text,
                                const std::string& context) {
    const std::size_t value = parse_size(text, context);
    if (value == 0) {
        throw InvalidArgument(context + " must be positive");
    }
    return value;
}

std::uint64_t parse_u64(std::string_view text, const std::string& context) {
    const std::string_view trimmed = trim(text);
    if (trimmed.empty() || trimmed.front() == '-' || trimmed.front() == '+') {
        bad_number(context, text, "a non-negative integer");
    }
    const std::string buf(trimmed);
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(buf.c_str(), &end, 0);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
        bad_number(context, text, "a non-negative integer");
    }
    return static_cast<std::uint64_t>(value);
}

double parse_double(std::string_view text, const std::string& context) {
    const std::string buf(trim(text));
    if (buf.empty()) bad_number(context, text, "a number");
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
        bad_number(context, text, "a number");
    }
    return value;
}

std::vector<std::size_t> parse_size_list(std::string_view text,
                                         const std::string& context) {
    // split() yields at least one field, so an empty/garbage `text` surfaces
    // as a parse_size error naming the context.
    std::vector<std::size_t> out;
    for (const std::string& field : split(text, ',')) {
        out.push_back(parse_size(field, context));
    }
    return out;
}

std::vector<std::string> parse_name_list(std::string_view text,
                                         const std::string& context) {
    std::vector<std::string> out;
    for (const std::string& field : split(text, ',')) {
        std::string name(trim(field));
        if (!name.empty()) out.push_back(std::move(name));
    }
    if (out.empty()) {
        throw InvalidArgument(context + ": expected a comma-separated name "
                                        "list, got '" + std::string(text) +
                              "'");
    }
    return out;
}

std::string format(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return {};
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string fixed(double value, int digits) {
    return format("%.*f", digits, value);
}

std::string human_seconds(double seconds) {
    const double mag = std::fabs(seconds);
    if (mag >= 1.0) return format("%.3f s", seconds);
    if (mag >= 1e-3) return format("%.3f ms", seconds * 1e3);
    if (mag >= 1e-6) return format("%.3f us", seconds * 1e6);
    return format("%.1f ns", seconds * 1e9);
}

std::string human_bytes(double bytes) {
    static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (std::fabs(bytes) >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    return format("%.2f %s", bytes, units[unit]);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        const std::size_t pos = text.find(sep, begin);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(begin));
            return out;
        }
        out.emplace_back(text.substr(begin, pos - begin));
        begin = pos + 1;
    }
}

std::string_view trim(std::string_view text) {
    const auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
    };
    while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
    while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
    return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
    if (text.size() >= width) return std::string(text);
    return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
    if (text.size() >= width) return std::string(text);
    return std::string(text) + std::string(width - text.size(), ' ');
}

} // namespace relperf::str
