#include "support/str.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace relperf::str {

std::string format(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return {};
    }
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

std::string fixed(double value, int digits) {
    return format("%.*f", digits, value);
}

std::string human_seconds(double seconds) {
    const double mag = std::fabs(seconds);
    if (mag >= 1.0) return format("%.3f s", seconds);
    if (mag >= 1e-3) return format("%.3f ms", seconds * 1e3);
    if (mag >= 1e-6) return format("%.3f us", seconds * 1e6);
    return format("%.1f ns", seconds * 1e9);
}

std::string human_bytes(double bytes) {
    static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (std::fabs(bytes) >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        ++unit;
    }
    return format("%.2f %s", bytes, units[unit]);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t begin = 0;
    while (true) {
        const std::size_t pos = text.find(sep, begin);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(begin));
            return out;
        }
        out.emplace_back(text.substr(begin, pos - begin));
        begin = pos + 1;
    }
}

std::string_view trim(std::string_view text) {
    const auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
    };
    while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
    while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
    return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(std::string_view text, std::size_t width) {
    if (text.size() >= width) return std::string(text);
    return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
    if (text.size() >= width) return std::string(text);
    return std::string(text) + std::string(width - text.size(), ' ');
}

} // namespace relperf::str
