#pragma once
//! \file cli.hpp
//! Tiny command-line option parser shared by the bench/example binaries.
//!
//! Supports `--flag`, `--key value` and `--key=value`. Unknown options throw,
//! so typos in experiment scripts fail loudly instead of silently running the
//! default configuration.

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace relperf::support {

/// Declarative option set + parsed values.
class CliParser {
public:
    explicit CliParser(std::string program_description);

    /// Declares options. Must happen before parse().
    void add_flag(const std::string& name, const std::string& help);
    void add_option(const std::string& name, const std::string& help,
                    const std::string& default_value);

    /// Redirects help/usage output. Defaults to std::cout; tests and embedding
    /// callers can point it at any stream to capture the text. Must not be null.
    void set_output(std::ostream* out);

    /// Parses argv. Returns false (after writing usage to the output stream)
    /// when --help was requested; throws InvalidArgument on unknown or
    /// malformed options.
    [[nodiscard]] bool parse(int argc, const char* const* argv);

    [[nodiscard]] bool flag(const std::string& name) const;
    [[nodiscard]] std::string value(const std::string& name) const;
    [[nodiscard]] int value_int(const std::string& name) const;
    [[nodiscard]] double value_double(const std::string& name) const;
    /// Empty optional when the option still holds its declared default and the
    /// default was the empty string (used for e.g. optional --csv paths).
    [[nodiscard]] std::optional<std::string> value_optional(const std::string& name) const;

    [[nodiscard]] std::string usage() const;

private:
    struct Option {
        std::string help;
        std::string value;
        bool is_flag = false;
        bool flag_set = false;
    };

    const Option& lookup(const std::string& name) const;

    std::string description_;
    std::ostream* out_; // never null; defaults to &std::cout
    std::map<std::string, Option> options_;
    std::vector<std::string> order_;
};

} // namespace relperf::support
