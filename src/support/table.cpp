#include "support/table.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

#include <algorithm>

namespace relperf::support {

AsciiTable::AsciiTable(std::vector<std::string> header, std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
    RELPERF_REQUIRE(!header_.empty(), "AsciiTable: header must be non-empty");
    if (aligns_.empty()) {
        aligns_.assign(header_.size(), Align::Left);
    }
    RELPERF_REQUIRE(aligns_.size() == header_.size(),
                    "AsciiTable: aligns must match header width");
}

void AsciiTable::add_row(std::vector<std::string> row) {
    RELPERF_REQUIRE(row.size() == header_.size(),
                    "AsciiTable: row width mismatch");
    rows_.push_back(Row{std::move(row), false});
}

void AsciiTable::add_separator() {
    rows_.push_back(Row{{}, true});
}

std::string AsciiTable::render() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const Row& row : rows_) {
        if (row.separator) continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    const auto rule = [&widths]() {
        std::string line = "+";
        for (const std::size_t w : widths) {
            line += std::string(w + 2, '-');
            line += '+';
        }
        line += '\n';
        return line;
    };

    const auto emit_row = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const std::string padded = aligns_[c] == Align::Left
                                           ? str::pad_right(cells[c], widths[c])
                                           : str::pad_left(cells[c], widths[c]);
            line += ' ';
            line += padded;
            line += " |";
        }
        line += '\n';
        return line;
    };

    std::string out = rule();
    out += emit_row(header_);
    out += rule();
    for (const Row& row : rows_) {
        out += row.separator ? rule() : emit_row(row.cells);
    }
    out += rule();
    return out;
}

} // namespace relperf::support
