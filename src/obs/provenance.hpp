#pragma once
//! \file provenance.hpp
//! The run provenance record: which host, build and plan produced an
//! output. Rendered into the trace JSON ("otherData"), the Prometheus dump
//! (relperf_build_info) and campaign shard manifests ("# provenance =").
//!
//! Built-in facts (host, build type, openmp, sanitizers) are collected
//! once; callers add run-specific facts (spec name, plan hash, backend
//! set, adaptive config) via set_provenance(). Order is deterministic:
//! built-ins first, then user keys in insertion order.

#include <string>
#include <vector>

namespace relperf::obs {

/// One provenance fact.
struct ProvenanceEntry {
    std::string key;
    std::string value;
};

/// Snapshot of the record (built-ins + user entries, deterministic order).
[[nodiscard]] std::vector<ProvenanceEntry> provenance();

/// Inserts or overwrites a user entry. Keys must be non-empty; newlines,
/// ';' and '=' in values are replaced with spaces so the record embeds
/// losslessly in single-line manifest comments.
void set_provenance(const std::string& key, const std::string& value);

/// Drops all user entries (built-ins stay). Test-only affordance.
void clear_provenance();

} // namespace relperf::obs
