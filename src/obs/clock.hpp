#pragma once
//! \file clock.hpp
//! The observability clock. This is the ONLY clock the obs layer reads,
//! and src/obs/clock.cpp is the only obs TU allowed to touch
//! std::chrono — it carries the justified banned-clock allowlist entry in
//! ci/lint_allow.txt. Timestamps from here feed trace spans and the shard
//! duration histogram exclusively; they never enter measurement CSVs.

#include <cstdint>

namespace relperf::obs {

/// Microseconds on a monotonic clock (arbitrary epoch — deltas and trace
/// timeline ordering only).
[[nodiscard]] std::uint64_t now_micros() noexcept;

/// Number of now_micros() calls this process has made. Lets the disabled
/// path be tested for "zero clock reads" without mocking the clock.
[[nodiscard]] std::uint64_t clock_reads() noexcept;

} // namespace relperf::obs
