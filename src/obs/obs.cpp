#include "obs/obs.hpp"

#include <atomic>
#include <mutex>
#include <utility>

namespace relperf::obs {

namespace {

std::atomic<bool> g_tracing{false};
std::atomic<bool> g_metrics{false};
std::atomic<bool> g_progress_armed{false};

std::mutex& progress_mutex() {
    static std::mutex mutex;
    return mutex;
}

std::function<void(const Progress&)>& progress_sink() {
    static std::function<void(const Progress&)> sink;
    return sink;
}

} // namespace

bool tracing_enabled() noexcept {
    return g_tracing.load(std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
    return g_metrics.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool on) noexcept {
    g_tracing.store(on, std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
    g_metrics.store(on, std::memory_order_relaxed);
}

void set_progress_sink(std::function<void(const Progress&)> sink) {
    const std::lock_guard<std::mutex> lock(progress_mutex());
    const bool armed = static_cast<bool>(sink);
    progress_sink() = std::move(sink);
    // Arm only after the sink is in place (report_progress re-checks under
    // the lock, so a racing reporter can never call a half-installed sink).
    g_progress_armed.store(armed, std::memory_order_release);
}

void report_progress(const char* stage, std::size_t done, std::size_t total) {
    if (!g_progress_armed.load(std::memory_order_relaxed)) return;
    const std::lock_guard<std::mutex> lock(progress_mutex());
    const std::function<void(const Progress&)>& sink = progress_sink();
    if (!sink) return;
    sink(Progress{stage, done, total});
}

} // namespace relperf::obs
