#include "obs/metrics.hpp"

#include "obs/provenance.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <mutex>
#include <string>
#include <variant>

namespace relperf::obs {

namespace {

/// Shortest round-trip decimal rendering (std::to_chars), so the dump never
/// goes through a printf float conversion (and stays lint-clean by
/// construction rather than by precision discipline).
std::string format_double(double v) {
    char buf[64];
    const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\' || c == '"') {
            out.push_back('\\');
            out.push_back(c);
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

void Histogram::observe(double v) noexcept {
    if (!metrics_enabled()) return;
    // First bucket whose bound is >= v; everything above lands in +Inf.
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // CAS loop instead of atomic<double>::fetch_add: identical semantics,
    // no dependence on C++20 atomic-float library support.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + v,
                                       std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    RELPERF_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "Histogram: bucket bounds must be ascending");
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::reset() noexcept {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

struct Registry::Impl {
    struct Entry {
        std::string help;
        // unique_ptr: handles must stay at fixed addresses across rehashes.
        std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                     std::unique_ptr<Histogram>>
            metric;
    };
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries; // ordered => deterministic dump
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Counter& Registry::counter(const std::string& name, const std::string& help) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it == impl_->entries.end()) {
        Impl::Entry entry{help, std::unique_ptr<Counter>(new Counter())};
        it = impl_->entries.emplace(name, std::move(entry)).first;
    }
    auto* held = std::get_if<std::unique_ptr<Counter>>(&it->second.metric);
    RELPERF_REQUIRE(held != nullptr && it->second.help == help,
                    "Registry: metric re-registered with a different "
                    "type or help: " + name);
    return **held;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it == impl_->entries.end()) {
        Impl::Entry entry{help, std::unique_ptr<Gauge>(new Gauge())};
        it = impl_->entries.emplace(name, std::move(entry)).first;
    }
    auto* held = std::get_if<std::unique_ptr<Gauge>>(&it->second.metric);
    RELPERF_REQUIRE(held != nullptr && it->second.help == help,
                    "Registry: metric re-registered with a different "
                    "type or help: " + name);
    return **held;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help,
                               std::vector<double> bounds) {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->entries.find(name);
    if (it == impl_->entries.end()) {
        Impl::Entry entry{
            help, std::unique_ptr<Histogram>(new Histogram(std::move(bounds)))};
        it = impl_->entries.emplace(name, std::move(entry)).first;
        return *std::get<std::unique_ptr<Histogram>>(it->second.metric);
    }
    auto* held = std::get_if<std::unique_ptr<Histogram>>(&it->second.metric);
    RELPERF_REQUIRE(held != nullptr && it->second.help == help &&
                        (*held)->bounds() == bounds,
                    "Registry: histogram re-registered with different "
                    "type, help or bounds: " + name);
    return **held;
}

std::string Registry::render_prometheus() const {
    std::string out;

    // The provenance record rides along as the conventional info metric.
    out += "# HELP relperf_build_info Run provenance record (value is "
           "always 1; the labels carry the facts).\n";
    out += "# TYPE relperf_build_info gauge\n";
    out += "relperf_build_info{";
    bool first = true;
    for (const ProvenanceEntry& e : provenance()) {
        if (!first) out += ",";
        first = false;
        out += e.key + "=\"" + escape_label(e.value) + "\"";
    }
    out += "} 1\n";

    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto& [name, entry] : impl_->entries) {
        out += "# HELP " + name + " " + entry.help + "\n";
        if (const auto* c =
                std::get_if<std::unique_ptr<Counter>>(&entry.metric)) {
            out += "# TYPE " + name + " counter\n";
            out += name + " " + std::to_string((*c)->value()) + "\n";
        } else if (const auto* g =
                       std::get_if<std::unique_ptr<Gauge>>(&entry.metric)) {
            out += "# TYPE " + name + " gauge\n";
            out += name + " " + format_double((*g)->value()) + "\n";
        } else {
            const Histogram& h =
                *std::get<std::unique_ptr<Histogram>>(entry.metric);
            out += "# TYPE " + name + " histogram\n";
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                cumulative += h.bucket_count(i);
                out += name + "_bucket{le=\"" + format_double(h.bounds()[i]) +
                       "\"} " + std::to_string(cumulative) + "\n";
            }
            cumulative += h.bucket_count(h.bounds().size());
            out += name + "_bucket{le=\"+Inf\"} " +
                   std::to_string(cumulative) + "\n";
            out += name + "_sum " + format_double(h.sum()) + "\n";
            out += name + "_count " + std::to_string(h.count()) + "\n";
        }
    }
    return out;
}

void Registry::reset_values() {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    for (auto& [name, entry] : impl_->entries) {
        if (auto* c = std::get_if<std::unique_ptr<Counter>>(&entry.metric)) {
            (*c)->reset();
        } else if (auto* g =
                       std::get_if<std::unique_ptr<Gauge>>(&entry.metric)) {
            (*g)->reset();
        } else {
            std::get<std::unique_ptr<Histogram>>(entry.metric)->reset();
        }
    }
}

Registry& registry() {
    static Registry instance;
    return instance;
}

const Metrics& metrics() {
    // Function-local static: one registration (and its allocations) per
    // process, on the first call — hot paths reuse the bundled handles.
    static const Metrics handles{
        registry().counter("relperf_samples_total",
                           "Measurement samples actually drawn."),
        registry().counter(
            "relperf_samples_fixed_n_total",
            "Samples the equivalent fixed-N plan would have drawn."),
        registry().counter(
            "relperf_adaptive_rounds",
            "Adaptive engine rounds (one clustering consulted per round)."),
        registry().counter("relperf_clusterings_total",
                           "Relative-performance clusterings computed."),
        registry().counter(
            "relperf_bootstrap_resamples_total",
            "Bootstrap resample vectors built by the comparator."),
        registry().counter("relperf_executions_total",
                           "Individual task-chain executions (sim + real)."),
        registry().counter("relperf_shards_total",
                           "Campaign shards measured in this process."),
        registry().counter("relperf_shard_merges_total",
                           "merge_shards invocations."),
        registry().counter(
            "relperf_coordination_rounds",
            "Coordinator rounds of coordinated adaptive campaigns (one "
            "merged re-clustering per round)."),
        registry().counter(
            "relperf_stopset_broadcast_total",
            "Global stop-set broadcasts to shards (shard count per "
            "coordination round)."),
        registry().counter("relperf_cache_hits_total",
                           "Result-cache exact hits (plan hash matched)."),
        registry().counter("relperf_cache_misses_total",
                           "Result-cache lookups that found no usable entry."),
        registry().counter(
            "relperf_cache_extensions_total",
            "Result-cache prefix extensions (smaller-budget entry reused)."),
        registry().counter(
            "relperf_cache_extension_samples_saved_total",
            "Samples served from cached entries instead of the executor."),
        registry().histogram(
            "relperf_shard_seconds", "Wall seconds spent measuring a shard.",
            {0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0}),
    };
    return handles;
}

} // namespace relperf::obs
