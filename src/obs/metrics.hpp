#pragma once
//! \file metrics.hpp
//! Process-wide metrics registry: counters, gauges and fixed-bucket
//! histograms with a Prometheus-text-format dump.
//!
//! Hot-path contract: increments are a relaxed atomic check plus a relaxed
//! fetch_add — no locks, no allocation. Registration (name -> handle) is
//! mutex-protected and happens once per site; instrumented code holds the
//! returned reference (handles are stable for the process lifetime, the
//! registry never removes metrics). The well-known relperf_* handles are
//! bundled in Metrics and fetched via metrics().

#include "obs/clock.hpp"
#include "obs/obs.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace relperf::obs {

/// Monotonic counter.
class Counter {
public:
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void inc(std::uint64_t delta = 1) noexcept {
        if (!metrics_enabled()) return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    friend class Registry;
    Counter() = default;
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
public:
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double v) noexcept {
        if (!metrics_enabled()) return;
        value_.store(v, std::memory_order_relaxed);
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    friend class Registry;
    Gauge() = default;
    void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (cumulative buckets in the Prometheus dump).
/// Bucket bounds are set at registration and immutable afterwards.
class Histogram {
public:
    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void observe(double v) noexcept;

    [[nodiscard]] const std::vector<double>& bounds() const noexcept {
        return bounds_;
    }
    /// Non-cumulative count of observations <= bounds()[i] (the last extra
    /// slot is the +Inf overflow bucket).
    [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }

private:
    friend class Registry;
    explicit Histogram(std::vector<double> bounds);
    void reset() noexcept;

    std::vector<double> bounds_; // strictly ascending, finite
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_; // bounds_+1 slots
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Name -> metric map with a deterministic (name-sorted) Prometheus dump.
/// register_* returns the existing handle when the name is already taken
/// (help/bounds must match — a mismatch is a programming error and throws).
class Registry {
public:
    Counter& counter(const std::string& name, const std::string& help);
    Gauge& gauge(const std::string& name, const std::string& help);
    Histogram& histogram(const std::string& name, const std::string& help,
                         std::vector<double> bounds);

    /// Prometheus text exposition format, metrics sorted by name, plus a
    /// relperf_build_info{...} 1 info-metric carrying the provenance record.
    [[nodiscard]] std::string render_prometheus() const;

    /// Zeroes every value (handles stay valid). Test-only affordance.
    void reset_values();

    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// The process-wide registry.
[[nodiscard]] Registry& registry();

/// Well-known handles, registered on first use. Call obs::metrics() once
/// outside a hot loop; the handles themselves are lock-free.
struct Metrics {
    Counter& samples_total;          ///< measurements actually drawn
    Counter& samples_fixed_n_total;  ///< what a fixed-N plan would have drawn
    Counter& adaptive_rounds;        ///< engine rounds (clusterings consulted)
    Counter& clusterings_total;      ///< RelativeClusterer::cluster calls
    Counter& bootstrap_resamples_total; ///< bootstrap resample vectors built
    Counter& executions_total;       ///< executor run_once invocations
    Counter& shards_total;           ///< campaign shards measured
    Counter& shard_merges_total;     ///< merge_shards calls
    Counter& coordination_rounds;    ///< coordinator round-loop iterations
    Counter& stopset_broadcast_total; ///< per-shard stop-set broadcasts
    Counter& cache_hits_total;       ///< result-cache exact hits
    Counter& cache_misses_total;     ///< result-cache misses
    Counter& cache_extensions_total; ///< result-cache prefix extensions
    /// Samples served from cached entries instead of the executor (the
    /// measurement cost a prefix extension or exact hit avoided).
    Counter& cache_extension_samples_saved_total;
    Histogram& shard_seconds;        ///< wall seconds per shard
};

[[nodiscard]] const Metrics& metrics();

/// RAII wall-clock timer feeding a histogram; arms only when metrics are
/// enabled at construction, so the disabled path reads no clock.
class ScopedHistogramTimer {
public:
    explicit ScopedHistogramTimer(Histogram& h) noexcept
        : histogram_(h),
          armed_(metrics_enabled()),
          start_us_(armed_ ? now_micros() : 0) {}
    ~ScopedHistogramTimer() {
        if (armed_) {
            histogram_.observe(
                static_cast<double>(now_micros() - start_us_) * 1e-6);
        }
    }
    ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
    ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

private:
    Histogram& histogram_;
    bool armed_;
    std::uint64_t start_us_;
};

} // namespace relperf::obs
