#pragma once
//! \file obs.hpp
//! Process-wide observability switches and the progress channel.
//!
//! The whole obs layer (trace spans, metrics, progress) hangs off two
//! relaxed atomics so that instrumented hot paths pay exactly one relaxed
//! load when observability is off — no allocation, no clock read, no lock
//! (gtest-asserted in tests/obs/noop_test.cpp). Everything obs emits is a
//! write-only side channel: enabling it must never change measurement
//! CSVs, plan hashes or clusterings (tests/obs/determinism_test.cpp).

#include <cstddef>
#include <functional>

namespace relperf::obs {

/// True when trace spans record events (relperf_cli --trace).
[[nodiscard]] bool tracing_enabled() noexcept;

/// True when metric counters/gauges/histograms accumulate.
[[nodiscard]] bool metrics_enabled() noexcept;

void set_tracing_enabled(bool on) noexcept;
void set_metrics_enabled(bool on) noexcept;

/// One progress tick. `stage` is a static string ("shards", "engine.round"),
/// `done`/`total` the position within that stage.
struct Progress {
    const char* stage;
    std::size_t done;
    std::size_t total;
};

/// Sink for progress ticks (the CLI's --progress meter). Pass an empty
/// function to uninstall. The sink is invoked under an internal mutex, so
/// it may be called from shard worker threads without its own locking.
void set_progress_sink(std::function<void(const Progress&)> sink);

/// Reports a tick to the installed sink; a cheap no-op (one relaxed load)
/// when no sink is installed.
void report_progress(const char* stage, std::size_t done, std::size_t total);

} // namespace relperf::obs
