#pragma once
//! \file trace.hpp
//! RAII scoped spans recording Chrome trace-event JSON ("X" complete
//! events, loadable in chrome://tracing or ui.perfetto.dev).
//!
//! A Span checks tracing_enabled() once at construction. Disabled spans
//! are inert: no allocation, no clock read, every arg() call a no-op
//! (tests/obs/noop_test.cpp asserts this). Enabled spans time themselves
//! with the obs clock and push one event into the process-wide buffer at
//! destruction. Events are buffered in completion order, which is
//! deterministic for a deterministic program (timestamps aside) —
//! tests/obs/trace_test.cpp asserts two identical sim runs produce the
//! same event sequence.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace relperf::obs {

/// One completed span, as buffered. `args` values are pre-rendered JSON
/// tokens (quoted+escaped strings, bare numbers).
struct TraceEvent {
    std::string name;
    std::string cat;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    std::uint32_t tid = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

/// RAII scoped span. `name` and `cat` must be string literals (or outlive
/// the span); they are copied only when tracing is enabled.
class Span {
public:
    Span(const char* name, const char* cat);
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// True when this span records (tracing was enabled at construction).
    /// Guard arg-value computations that themselves allocate.
    [[nodiscard]] bool armed() const noexcept { return armed_; }

    Span& arg(const char* key, std::uint64_t v);
    Span& arg(const char* key, double v);
    Span& arg(const char* key, std::string_view v);

private:
    bool armed_;
    std::uint64_t start_us_ = 0;
    TraceEvent event_;
};

/// Drops all buffered events (tests and long-lived processes).
void clear_trace();

/// Number of buffered events (dropped-on-overflow ones excluded).
[[nodiscard]] std::size_t trace_event_count();

/// Events dropped because the buffer hit its cap.
[[nodiscard]] std::uint64_t trace_events_dropped();

/// Snapshot of the buffered events.
[[nodiscard]] std::vector<TraceEvent> trace_events();

/// The full Chrome trace JSON object: {"traceEvents": [...], "otherData":
/// {...provenance...}}. One event per line, fields in fixed order.
[[nodiscard]] std::string render_trace_json();

/// Renders and writes the trace to `path`; throws relperf::Error on IO
/// failure.
void write_trace_json(const std::string& path);

} // namespace relperf::obs
