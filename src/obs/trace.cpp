#include "obs/trace.hpp"

#include "obs/clock.hpp"
#include "obs/obs.hpp"
#include "obs/provenance.hpp"
#include "support/error.hpp"

#include <atomic>
#include <charconv>
#include <fstream>
#include <mutex>

namespace relperf::obs {

namespace {

/// Backstop against unbounded growth in very long-lived processes; at
/// typical campaign span rates this is far above any real run.
constexpr std::size_t kMaxTraceEvents = std::size_t{1} << 20;

std::mutex g_buffer_mutex;
std::vector<TraceEvent> g_buffer;
std::atomic<std::uint64_t> g_dropped{0};

std::uint32_t thread_id() {
    static std::atomic<std::uint32_t> next{0};
    // Sequential per-thread ids: small, stable within a run, and free of
    // the platform-specific width/format of std::thread::id.
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::string json_escape(std::string_view v) {
    std::string out;
    out.reserve(v.size() + 2);
    out.push_back('"');
    for (const char c : v) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char* hex = "0123456789abcdef";
                out += "\\u00";
                out.push_back(hex[(c >> 4) & 0xF]);
                out.push_back(hex[c & 0xF]);
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string format_double(double v) {
    char buf[64];
    const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, r.ptr);
}

} // namespace

Span::Span(const char* name, const char* cat) : armed_(tracing_enabled()) {
    if (!armed_) return;
    event_.name = name;
    event_.cat = cat;
    start_us_ = now_micros();
}

Span::~Span() {
    if (!armed_) return;
    const std::uint64_t end_us = now_micros();
    event_.ts_us = start_us_;
    event_.dur_us = end_us - start_us_;
    event_.tid = thread_id();
    const std::lock_guard<std::mutex> lock(g_buffer_mutex);
    if (g_buffer.size() >= kMaxTraceEvents) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    g_buffer.push_back(std::move(event_));
}

Span& Span::arg(const char* key, std::uint64_t v) {
    if (armed_) event_.args.emplace_back(key, std::to_string(v));
    return *this;
}

Span& Span::arg(const char* key, double v) {
    if (armed_) event_.args.emplace_back(key, format_double(v));
    return *this;
}

Span& Span::arg(const char* key, std::string_view v) {
    if (armed_) event_.args.emplace_back(key, json_escape(v));
    return *this;
}

void clear_trace() {
    const std::lock_guard<std::mutex> lock(g_buffer_mutex);
    g_buffer.clear();
    g_dropped.store(0, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
    const std::lock_guard<std::mutex> lock(g_buffer_mutex);
    return g_buffer.size();
}

std::uint64_t trace_events_dropped() {
    return g_dropped.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> trace_events() {
    const std::lock_guard<std::mutex> lock(g_buffer_mutex);
    return g_buffer;
}

std::string render_trace_json() {
    const std::vector<TraceEvent> events = trace_events();
    std::string out = "{\n\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        out += "{\"name\":" + json_escape(e.name) +
               ",\"cat\":" + json_escape(e.cat) +
               ",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
               ",\"ts\":" + std::to_string(e.ts_us) +
               ",\"dur\":" + std::to_string(e.dur_us) + ",\"args\":{";
        for (std::size_t a = 0; a < e.args.size(); ++a) {
            if (a != 0) out += ",";
            out += json_escape(e.args[a].first) + ":" + e.args[a].second;
        }
        out += "}}";
        if (i + 1 < events.size()) out += ",";
        out += "\n";
    }
    out += "],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"provenance\": {";
    const std::vector<ProvenanceEntry> record = provenance();
    for (std::size_t i = 0; i < record.size(); ++i) {
        if (i != 0) out += ",";
        out += json_escape(record[i].key) + ":" + json_escape(record[i].value);
    }
    out += "},\"droppedEvents\":" + std::to_string(trace_events_dropped()) +
           "}\n}\n";
    return out;
}

void write_trace_json(const std::string& path) {
    std::ofstream out(path);
    RELPERF_REQUIRE(static_cast<bool>(out),
                    "trace: cannot open output file: " + path);
    out << render_trace_json();
    out.close();
    RELPERF_REQUIRE(static_cast<bool>(out),
                    "trace: failed writing output file: " + path);
}

} // namespace relperf::obs
