#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace relperf::obs {

namespace {
std::atomic<std::uint64_t> g_clock_reads{0};
} // namespace

std::uint64_t now_micros() noexcept {
    g_clock_reads.fetch_add(1, std::memory_order_relaxed);
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}

std::uint64_t clock_reads() noexcept {
    return g_clock_reads.load(std::memory_order_relaxed);
}

} // namespace relperf::obs
