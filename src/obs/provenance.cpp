#include "obs/provenance.hpp"

#include "support/error.hpp"

#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define RELPERF_OBS_HAVE_POSIX 1
#else
#define RELPERF_OBS_HAVE_POSIX 0
#endif

namespace relperf::obs {

namespace {

std::string sanitize_value(const std::string& v) {
    std::string out = v;
    for (char& c : out) {
        if (c == ';' || c == '=' || c == '\n' || c == '\r') c = ' ';
    }
    return out;
}

std::string obs_host_name() {
#if RELPERF_OBS_HAVE_POSIX
    char buf[256] = {};
    if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
        return buf;
    }
#endif
    return "unknown";
}

std::vector<ProvenanceEntry> builtin_entries() {
    std::vector<ProvenanceEntry> out;
    out.push_back({"host", obs_host_name()});
#ifdef RELPERF_OBS_BUILD_TYPE
    out.push_back({"build", sanitize_value(RELPERF_OBS_BUILD_TYPE)});
#else
    out.push_back({"build", "unknown"});
#endif
#ifdef RELPERF_OBS_SANITIZE
    out.push_back({"sanitize", sanitize_value(RELPERF_OBS_SANITIZE)});
#else
    out.push_back({"sanitize", "none"});
#endif
#ifdef _OPENMP
    out.push_back({"openmp", "on"});
#else
    out.push_back({"openmp", "off"});
#endif
    return out;
}

std::mutex g_mutex;

std::vector<ProvenanceEntry>& user_entries() {
    static std::vector<ProvenanceEntry> entries;
    return entries;
}

} // namespace

std::vector<ProvenanceEntry> provenance() {
    // Built-ins are host/build facts: computing them fresh per snapshot
    // keeps this function free of initialization-order traps, and it is
    // never on a hot path.
    std::vector<ProvenanceEntry> out = builtin_entries();
    const std::lock_guard<std::mutex> lock(g_mutex);
    for (const ProvenanceEntry& e : user_entries()) out.push_back(e);
    return out;
}

void set_provenance(const std::string& key, const std::string& value) {
    RELPERF_REQUIRE(!key.empty(), "provenance: key must be non-empty");
    const std::string clean = sanitize_value(value);
    const std::lock_guard<std::mutex> lock(g_mutex);
    for (ProvenanceEntry& e : user_entries()) {
        if (e.key == key) {
            e.value = clean;
            return;
        }
    }
    user_entries().push_back({key, clean});
}

void clear_provenance() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    user_entries().clear();
}

} // namespace relperf::obs
