#include "search/model_guided_search.hpp"

#include "core/bootstrap_comparator.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace relperf::search {

void SearchConfig::validate() const {
    RELPERF_REQUIRE(initial_samples >= 2,
                    "SearchConfig: need at least two initial samples");
    RELPERF_REQUIRE(batch_size >= 1, "SearchConfig: batch size must be >= 1");
    RELPERF_REQUIRE(explore_fraction >= 0.0 && explore_fraction <= 1.0,
                    "SearchConfig: explore fraction must be in [0, 1]");
    RELPERF_REQUIRE(measurements_per_alg >= 2,
                    "SearchConfig: need at least two measurements per algorithm");
}

ModelGuidedSearch::ModelGuidedSearch(const sim::SimulatedExecutor& executor,
                                     const workloads::TaskChain& chain,
                                     SearchConfig config)
    : executor_(executor), chain_(chain), config_(config) {
    config_.validate();
    RELPERF_REQUIRE(chain_.size() >= 1 && chain_.size() < 20,
                    "ModelGuidedSearch: chain length out of range");
}

SearchResult ModelGuidedSearch::run() const {
    const std::vector<workloads::DeviceAssignment> space =
        workloads::enumerate_assignments(chain_.size());

    stats::Rng rng(config_.seed);
    stats::Rng measure_rng = rng.child(1);

    std::vector<bool> measured(space.size(), false);
    std::vector<workloads::DeviceAssignment> measured_assignments;
    core::MeasurementSet measurements;
    std::vector<double> measured_means;

    const auto measure_candidate = [&](std::size_t index) {
        if (measured[index]) return;
        measured[index] = true;
        std::vector<double> samples = executor_.measure(
            chain_, space[index], config_.measurements_per_alg, measure_rng);
        measured_means.push_back(stats::mean(samples));
        measurements.add(space[index].alg_name(), std::move(samples));
        measured_assignments.push_back(space[index]);
    };

    // Phase 1: random subset.
    {
        std::vector<std::size_t> order(space.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        rng.shuffle(order);
        const std::size_t initial =
            std::min(config_.initial_samples, space.size());
        for (std::size_t i = 0; i < initial; ++i) measure_candidate(order[i]);
    }

    // Phase 2: fit / predict / measure the most promising batch.
    model::PerformancePredictor predictor(config_.predictor);
    for (std::size_t round = 0; round < config_.refinement_rounds; ++round) {
        predictor.fit(chain_, measured_assignments, measurements);

        std::vector<std::size_t> unmeasured;
        for (std::size_t i = 0; i < space.size(); ++i) {
            if (!measured[i]) unmeasured.push_back(i);
        }
        if (unmeasured.empty()) break;

        std::sort(unmeasured.begin(), unmeasured.end(),
                  [&](std::size_t a, std::size_t b) {
                      return predictor.predict_seconds(chain_, space[a]) <
                             predictor.predict_seconds(chain_, space[b]);
                  });

        const std::size_t batch = std::min(config_.batch_size, unmeasured.size());
        const auto explore = static_cast<std::size_t>(
            std::floor(config_.explore_fraction * static_cast<double>(batch)));
        const std::size_t exploit = batch - explore;

        // Exploit: best predicted candidates.
        for (std::size_t i = 0; i < exploit; ++i) measure_candidate(unmeasured[i]);
        // Explore: random unmeasured candidates (keeps the model honest).
        for (std::size_t i = 0; i < explore; ++i) {
            const std::size_t pick =
                exploit +
                static_cast<std::size_t>(rng.uniform_index(unmeasured.size() - exploit));
            measure_candidate(unmeasured[pick]);
        }
    }
    predictor.fit(chain_, measured_assignments, measurements);

    // Phase 3: cluster the measured subset with the paper methodology.
    const core::BootstrapComparator comparator;
    const core::RelativeClusterer clusterer(comparator, config_.clustering);

    SearchResult result;
    result.space_size = space.size();
    result.measured_count = measured_assignments.size();
    result.clustering = clusterer.cluster(measurements);

    std::size_t best_index = 0;
    double best_mean = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < measured_means.size(); ++i) {
        if (measured_means[i] < best_mean) {
            best_mean = measured_means[i];
            best_index = i;
        }
    }
    result.best = measured_assignments[best_index];
    result.best_measured_mean = best_mean;
    result.measurements = std::move(measurements);
    result.measured_assignments = std::move(measured_assignments);
    result.predictor = std::move(predictor);
    return result;
}

} // namespace relperf::search
