#include "search/model_guided_search.hpp"

#include "core/bootstrap_comparator.hpp"
#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace relperf::search {

void SearchConfig::validate() const {
    RELPERF_REQUIRE(initial_samples >= 2,
                    "SearchConfig: need at least two initial samples");
    RELPERF_REQUIRE(batch_size >= 1, "SearchConfig: batch size must be >= 1");
    RELPERF_REQUIRE(explore_fraction >= 0.0 && explore_fraction <= 1.0,
                    "SearchConfig: explore fraction must be in [0, 1]");
    RELPERF_REQUIRE(measurements_per_alg >= 2,
                    "SearchConfig: need at least two measurements per algorithm");
}

ModelGuidedSearch::ModelGuidedSearch(const sim::SimulatedExecutor& executor,
                                     const workloads::TaskChain& chain,
                                     SearchConfig config)
    : executor_(executor), chain_(chain), config_(config) {
    config_.validate();
    RELPERF_REQUIRE(chain_.size() >= 1 &&
                        chain_.size() < workloads::kMaxEnumeratedTasks,
                    "ModelGuidedSearch: chain length out of range");
}

SearchResult ModelGuidedSearch::run() const {
    // The candidate space: plain placements, or placement×backend variants
    // when a backend axis was configured. Legacy (placement-only) searches
    // keep their exact pre-variant numerics: the measurement streams are
    // unchanged and the predictor is fitted in its legacy feature space.
    const bool variant_space = !config_.backends.empty();
    std::vector<workloads::VariantAssignment> space;
    if (variant_space) {
        space = workloads::enumerate_variants(chain_.size(), config_.backends);
    } else {
        for (const workloads::DeviceAssignment& assignment :
             workloads::enumerate_assignments(chain_.size())) {
            space.emplace_back(assignment);
        }
    }

    stats::Rng rng(config_.seed);
    stats::Rng measure_rng = rng.child(1);

    std::vector<bool> measured(space.size(), false);
    std::vector<workloads::VariantAssignment> measured_variants;
    std::vector<workloads::DeviceAssignment> measured_placements;
    core::MeasurementSet measurements;
    std::vector<double> measured_means;

    const auto measure_candidate = [&](std::size_t index) {
        if (measured[index]) return;
        measured[index] = true;
        std::vector<double> samples = executor_.measure(
            chain_, space[index], config_.measurements_per_alg, measure_rng);
        measured_means.push_back(stats::mean(samples));
        measurements.add(space[index].alg_name(), std::move(samples));
        measured_variants.push_back(space[index]);
        measured_placements.push_back(space[index].device_assignment());
    };

    // Phase 1: random subset.
    {
        std::vector<std::size_t> order(space.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        rng.shuffle(order);
        const std::size_t initial =
            std::min(config_.initial_samples, space.size());
        for (std::size_t i = 0; i < initial; ++i) measure_candidate(order[i]);
    }

    // Phase 2: fit / predict / measure the most promising batch.
    model::PerformancePredictor predictor(config_.predictor);
    // Fit over the *configured* backend universe, not the backends the
    // sampled subset happens to cover: phase 2 predicts across the whole
    // space, and a universe derived from an unlucky initial sample would
    // reject variants on the missing backend. The chain's default backend
    // rides along so the returned predictor can also price plain
    // (backend-inherit) assignments.
    std::vector<std::string> universe = config_.backends;
    if (variant_space &&
        std::find(universe.begin(), universe.end(), chain_.backend) ==
            universe.end()) {
        universe.push_back(chain_.backend);
    }
    const auto fit = [&] {
        if (variant_space) {
            predictor.fit(chain_, measured_variants, measurements, universe);
        } else {
            predictor.fit(chain_, measured_placements, measurements);
        }
    };
    const auto predict = [&](std::size_t index) {
        return variant_space
                   ? predictor.predict_seconds(chain_, space[index])
                   : predictor.predict_seconds(
                         chain_, space[index].device_assignment());
    };
    for (std::size_t round = 0; round < config_.refinement_rounds; ++round) {
        fit();

        std::vector<std::size_t> unmeasured;
        for (std::size_t i = 0; i < space.size(); ++i) {
            if (!measured[i]) unmeasured.push_back(i);
        }
        if (unmeasured.empty()) break;

        std::sort(unmeasured.begin(), unmeasured.end(),
                  [&](std::size_t a, std::size_t b) {
                      return predict(a) < predict(b);
                  });

        const std::size_t batch = std::min(config_.batch_size, unmeasured.size());
        const auto explore = static_cast<std::size_t>(
            std::floor(config_.explore_fraction * static_cast<double>(batch)));
        const std::size_t exploit = batch - explore;

        // Exploit: best predicted candidates.
        for (std::size_t i = 0; i < exploit; ++i) measure_candidate(unmeasured[i]);
        // Explore: random unmeasured candidates (keeps the model honest).
        for (std::size_t i = 0; i < explore; ++i) {
            const std::size_t pick =
                exploit +
                static_cast<std::size_t>(rng.uniform_index(unmeasured.size() - exploit));
            measure_candidate(unmeasured[pick]);
        }
    }
    fit();

    // Phase 3: cluster the measured subset with the paper methodology.
    const core::BootstrapComparator comparator;
    const core::RelativeClusterer clusterer(comparator, config_.clustering);

    SearchResult result;
    result.space_size = space.size();
    result.measured_count = measured_variants.size();
    result.clustering = clusterer.cluster(measurements);

    std::size_t best_index = 0;
    double best_mean = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < measured_means.size(); ++i) {
        if (measured_means[i] < best_mean) {
            best_mean = measured_means[i];
            best_index = i;
        }
    }
    result.best = measured_placements[best_index];
    result.best_variant = measured_variants[best_index];
    result.best_measured_mean = best_mean;
    result.measurements = std::move(measurements);
    result.measured_variants = std::move(measured_variants);
    result.measured_assignments = std::move(measured_placements);
    result.predictor = std::move(predictor);
    return result;
}

} // namespace relperf::search
