#pragma once
//! \file model_guided_search.hpp
//! Subset-based exploration of exponential assignment spaces — the paper's
//! Sec. V outlook: "in case of exponential explosion of the search space,
//! our methodology can still be applied on a subset of possible solutions
//! and the resulting clusters ... can be used as a ground truth to guide the
//! search".
//!
//! Strategy (measure-fit-predict-refine):
//!   1. measure a random subset of assignments (N runs each);
//!   2. fit the execution-less PerformancePredictor on the measured subset;
//!   3. predict every unmeasured assignment, measure the most promising
//!      batch (plus epsilon-greedy exploration);
//!   4. repeat; finally cluster the *measured* assignments with the paper's
//!      methodology and report the best class.

#include "core/clustering.hpp"
#include "core/pipeline.hpp"
#include "model/predictor.hpp"
#include "sim/executor.hpp"
#include "workloads/chain.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace relperf::search {

struct SearchConfig {
    std::size_t initial_samples = 12;   ///< Random assignments measured first.
    std::size_t refinement_rounds = 3;  ///< Fit/predict/measure iterations.
    std::size_t batch_size = 6;         ///< Assignments measured per round.
    double explore_fraction = 0.25;     ///< Portion of each batch drawn randomly.
    std::size_t measurements_per_alg = 15; ///< N per measured assignment.
    model::PredictorConfig predictor;   ///< Ridge + tie-band knobs.
    core::ClustererConfig clustering;   ///< Final clustering of the subset.
    std::uint64_t seed = 0xBEEF;
    /// Per-task backend choices. Empty (the default) searches the paper's
    /// plain 2^k placement space exactly as before. Non-empty backends grow
    /// the candidate space to the (2·B)^k placement×backend variants of
    /// workloads::enumerate_variants — the regime where subset search is the
    /// only viable methodology.
    std::vector<std::string> backends;

    void validate() const;
};

/// Outcome of one search.
struct SearchResult {
    workloads::DeviceAssignment best{"D"}; ///< Best measured placements.
    /// Best measured variant (equals `best` with inherit backends when the
    /// search ran over the plain placement space).
    workloads::VariantAssignment best_variant{"D"};
    double best_measured_mean = 0.0;   ///< Its measured mean seconds.
    std::size_t space_size = 0;        ///< 2^k (or (2B)^k) candidates in total.
    std::size_t measured_count = 0;    ///< Variants actually executed.
    core::MeasurementSet measurements; ///< All measured distributions.
    std::vector<workloads::VariantAssignment> measured_variants;
    /// Placement projections of measured_variants (legacy view).
    std::vector<workloads::DeviceAssignment> measured_assignments;
    core::Clustering clustering;       ///< Paper clustering of the subset.
    model::PerformancePredictor predictor; ///< Final fitted model.

    /// Fraction of the space that was executed.
    [[nodiscard]] double measured_fraction() const noexcept {
        return space_size == 0
                   ? 0.0
                   : static_cast<double>(measured_count) /
                         static_cast<double>(space_size);
    }
};

/// Runs the model-guided search over the candidate space of `chain` on the
/// given simulated executor: all 2^k placement assignments by default, or
/// the (2·B)^k placement×backend variants when SearchConfig::backends is
/// set.
class ModelGuidedSearch {
public:
    ModelGuidedSearch(const sim::SimulatedExecutor& executor,
                      const workloads::TaskChain& chain, SearchConfig config);

    [[nodiscard]] SearchResult run() const;

private:
    const sim::SimulatedExecutor& executor_;
    const workloads::TaskChain& chain_;
    SearchConfig config_;
};

} // namespace relperf::search
