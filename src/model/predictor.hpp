#pragma once
//! \file predictor.hpp
//! Execution-less relative-performance prediction — the paper's Sec. V
//! outlook made concrete: train on the measured subset (clusters as ground
//! truth), predict the performance class of assignments that were never
//! executed.
//!
//! The predictor regresses mean execution time on the structural features of
//! (chain, assignment) and converts predicted times back into three-way
//! comparisons and ranked classes with a relative tie band (mirroring the
//! measured comparator's equivalence semantics).

#include "core/clustering.hpp"
#include "core/measurement.hpp"
#include "model/features.hpp"
#include "model/ridge.hpp"
#include "workloads/chain.hpp"

namespace relperf::model {

/// Configuration of the predictor.
struct PredictorConfig {
    double ridge_lambda = 1e-3; ///< L2 penalty (standardized feature space).
    double tie_epsilon = 0.02;  ///< Relative band for predicted equivalence.
};

class PerformancePredictor {
public:
    explicit PerformancePredictor(PredictorConfig config = {});

    /// Trains on measured assignments: targets are the sample means of each
    /// algorithm's distribution.
    void fit(const workloads::TaskChain& chain,
             const std::vector<workloads::DeviceAssignment>& assignments,
             const core::MeasurementSet& measurements);

    /// Trains on measured placement×backend variants. The backend feature
    /// universe is derived from the training variants (first-seen order of
    /// each task's resolved backend) and stored, so later predictions can
    /// only name backends the model has seen — unknown ones throw.
    void fit(const workloads::TaskChain& chain,
             const std::vector<workloads::VariantAssignment>& variants,
             const core::MeasurementSet& measurements);

    /// As above with an explicit backend universe — for callers that will
    /// predict variants whose backends the training subset may not cover
    /// (e.g. subset search over a configured axis). Every training variant's
    /// resolved backend must be in `backend_universe`.
    void fit(const workloads::TaskChain& chain,
             const std::vector<workloads::VariantAssignment>& variants,
             const core::MeasurementSet& measurements,
             std::vector<std::string> backend_universe);

    /// Predicted mean execution time of an (unseen) assignment.
    [[nodiscard]] double predict_seconds(const workloads::TaskChain& chain,
                                         const workloads::DeviceAssignment& assignment) const;
    [[nodiscard]] double predict_seconds(const workloads::TaskChain& chain,
                                         const workloads::VariantAssignment& variant) const;

    /// Predicted three-way comparison (Better = `a` faster), using the tie
    /// band on predicted times.
    [[nodiscard]] core::Ordering compare(const workloads::TaskChain& chain,
                                         const workloads::DeviceAssignment& a,
                                         const workloads::DeviceAssignment& b) const;
    [[nodiscard]] core::Ordering compare(const workloads::TaskChain& chain,
                                         const workloads::VariantAssignment& a,
                                         const workloads::VariantAssignment& b) const;

    /// Predicted ranked sequence (performance classes) over a set of
    /// assignments, via the paper's three-way sort driven by predicted
    /// comparisons.
    [[nodiscard]] core::RankedSequence rank(
        const workloads::TaskChain& chain,
        const std::vector<workloads::DeviceAssignment>& assignments) const;
    [[nodiscard]] core::RankedSequence rank(
        const workloads::TaskChain& chain,
        const std::vector<workloads::VariantAssignment>& variants) const;

    [[nodiscard]] bool is_fitted() const noexcept { return regressor_.is_fitted(); }
    /// True when the model was fitted on variants (backend-split features).
    [[nodiscard]] bool variant_mode() const noexcept { return variant_mode_; }
    /// The stored backend universe (empty unless variant_mode()).
    [[nodiscard]] const std::vector<std::string>& backend_universe() const noexcept {
        return backend_universe_;
    }
    [[nodiscard]] const RidgeRegressor& regressor() const noexcept {
        return regressor_;
    }

private:
    PredictorConfig config_;
    RidgeRegressor regressor_;
    bool variant_mode_ = false;
    std::vector<std::string> backend_universe_;
};

/// Goodness of the predicted ordering against measured data.
struct PredictionEval {
    double kendall_tau = 0.0;          ///< Predicted vs measured mean times.
    double spearman_rho = 0.0;
    double pairwise_disagreement = 0.0;///< Fraction of flipped strict pairs.
    double mean_abs_rel_error = 0.0;   ///< |pred - meas| / meas, averaged.
    double rank_agreement = 0.0;       ///< Fraction with predicted class ==
                                       ///< measured final class.
};

/// Evaluates a fitted predictor on (typically held-out) measured assignments
/// whose measured clustering is available.
[[nodiscard]] PredictionEval evaluate_predictor(
    const PerformancePredictor& predictor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::MeasurementSet& measurements, const core::Clustering& clustering);

} // namespace relperf::model
