#include "model/triplet.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace relperf::model {

std::vector<Triplet> sample_triplets(const core::Clustering& clustering,
                                     std::size_t count, stats::Rng& rng) {
    RELPERF_REQUIRE(count > 0, "sample_triplets: count must be positive");

    // Group algorithms by final class.
    const std::size_t p = clustering.final_assignment.size();
    RELPERF_REQUIRE(p >= 3, "sample_triplets: need at least three algorithms");
    int max_rank = 0;
    for (const core::FinalAssignment& fin : clustering.final_assignment) {
        max_rank = std::max(max_rank, fin.rank);
    }
    std::vector<std::vector<std::size_t>> by_rank(
        static_cast<std::size_t>(max_rank) + 1);
    for (const core::FinalAssignment& fin : clustering.final_assignment) {
        by_rank[static_cast<std::size_t>(fin.rank)].push_back(fin.alg);
    }

    // Anchor classes: >= 2 members AND at least one strictly worse algorithm.
    std::vector<int> anchor_ranks;
    for (int rank = 1; rank <= max_rank; ++rank) {
        if (by_rank[static_cast<std::size_t>(rank)].size() < 2) continue;
        std::size_t worse = 0;
        for (int r = rank + 1; r <= max_rank; ++r) {
            worse += by_rank[static_cast<std::size_t>(r)].size();
        }
        if (worse > 0) anchor_ranks.push_back(rank);
    }
    RELPERF_REQUIRE(!anchor_ranks.empty(),
                    "sample_triplets: no class has both a positive peer and a "
                    "worse negative");

    std::vector<Triplet> out;
    out.reserve(count);
    while (out.size() < count) {
        const int rank = anchor_ranks[static_cast<std::size_t>(
            rng.uniform_index(anchor_ranks.size()))];
        const std::vector<std::size_t>& peers =
            by_rank[static_cast<std::size_t>(rank)];

        Triplet t;
        t.anchor = peers[static_cast<std::size_t>(rng.uniform_index(peers.size()))];
        do {
            t.positive =
                peers[static_cast<std::size_t>(rng.uniform_index(peers.size()))];
        } while (t.positive == t.anchor);

        // Negative: uniform over all strictly worse algorithms.
        std::vector<std::size_t> worse;
        for (int r = rank + 1; r <= max_rank; ++r) {
            const auto& members = by_rank[static_cast<std::size_t>(r)];
            worse.insert(worse.end(), members.begin(), members.end());
        }
        t.negative = worse[static_cast<std::size_t>(rng.uniform_index(worse.size()))];
        out.push_back(t);
    }
    return out;
}

void TripletScorerConfig::validate() const {
    RELPERF_REQUIRE(margin > 0.0, "TripletScorer: margin must be positive");
    RELPERF_REQUIRE(tie_margin >= 0.0, "TripletScorer: tie_margin must be >= 0");
    RELPERF_REQUIRE(learning_rate > 0.0, "TripletScorer: learning rate must be positive");
    RELPERF_REQUIRE(epochs > 0, "TripletScorer: epochs must be positive");
    RELPERF_REQUIRE(l2 >= 0.0, "TripletScorer: l2 must be >= 0");
}

TripletScorer::TripletScorer(TripletScorerConfig config) : config_(config) {
    config_.validate();
}

void TripletScorer::fit(const std::vector<std::vector<double>>& rows,
                        const std::vector<Triplet>& triplets) {
    RELPERF_REQUIRE(!rows.empty(), "TripletScorer: no feature rows");
    RELPERF_REQUIRE(!triplets.empty(), "TripletScorer: no triplets");
    const std::size_t p = rows.front().size();
    for (const auto& row : rows) {
        RELPERF_REQUIRE(row.size() == p, "TripletScorer: ragged feature rows");
    }
    for (const Triplet& t : triplets) {
        RELPERF_REQUIRE(t.anchor < rows.size() && t.positive < rows.size() &&
                            t.negative < rows.size(),
                        "TripletScorer: triplet index out of range");
    }

    // Standardize features.
    const std::size_t n = rows.size();
    feature_mean_.assign(p, 0.0);
    feature_scale_.assign(p, 1.0);
    for (std::size_t j = 0; j < p; ++j) {
        double sum = 0.0;
        for (const auto& row : rows) sum += row[j];
        feature_mean_[j] = sum / static_cast<double>(n);
        double ssq = 0.0;
        for (const auto& row : rows) {
            const double d = row[j] - feature_mean_[j];
            ssq += d * d;
        }
        const double sd = std::sqrt(ssq / static_cast<double>(n));
        feature_scale_[j] = sd > 0.0 ? sd : 1.0;
    }
    std::vector<std::vector<double>> z(n, std::vector<double>(p));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
            z[i][j] = (rows[i][j] - feature_mean_[j]) / feature_scale_[j];
        }
    }

    weights_.assign(p, 0.0);
    fitted_ = true; // score() usable inside the loop

    const auto raw_score = [&](std::size_t i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < p; ++j) acc += weights_[j] * z[i][j];
        return acc;
    };

    stats::Rng rng(config_.seed);
    std::vector<std::size_t> order(triplets.size());
    std::iota(order.begin(), order.end(), std::size_t{0});

    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        // Simple 1/sqrt decay keeps late epochs stable.
        const double lr =
            config_.learning_rate / std::sqrt(1.0 + static_cast<double>(epoch));
        for (const std::size_t idx : order) {
            const Triplet& t = triplets[idx];
            const double sa = raw_score(t.anchor);
            const double sp = raw_score(t.positive);
            const double sn = raw_score(t.negative);

            // Rank hinge: want sn - sa >= margin.
            if (config_.margin - (sn - sa) > 0.0) {
                // d/dw [-(sn - sa)] = z[anchor] - z[negative].
                for (std::size_t j = 0; j < p; ++j) {
                    weights_[j] -= lr * (z[t.anchor][j] - z[t.negative][j]);
                }
            }
            // Tie hinge: want |sa - sp| <= tie_margin.
            const double gap = sa - sp;
            if (std::fabs(gap) - config_.tie_margin > 0.0) {
                const double sign = gap > 0.0 ? 1.0 : -1.0;
                for (std::size_t j = 0; j < p; ++j) {
                    weights_[j] -= lr * sign * (z[t.anchor][j] - z[t.positive][j]);
                }
            }
            // Weight decay.
            if (config_.l2 > 0.0) {
                for (double& w : weights_) w *= 1.0 - lr * config_.l2;
            }
        }
    }
}

double TripletScorer::score(std::span<const double> row) const {
    RELPERF_REQUIRE(fitted_, "TripletScorer: score before fit");
    RELPERF_REQUIRE(row.size() == weights_.size(),
                    "TripletScorer: feature dimension mismatch");
    double acc = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
        acc += weights_[j] * (row[j] - feature_mean_[j]) / feature_scale_[j];
    }
    return acc;
}

double TripletScorer::triplet_satisfaction(
    const std::vector<std::vector<double>>& rows,
    const std::vector<Triplet>& triplets) const {
    RELPERF_REQUIRE(!triplets.empty(), "TripletScorer: no triplets");
    std::size_t satisfied = 0;
    for (const Triplet& t : triplets) {
        if (score(rows[t.negative]) - score(rows[t.anchor]) >= config_.margin) {
            ++satisfied;
        }
    }
    return static_cast<double>(satisfied) / static_cast<double>(triplets.size());
}

TripletScorer fit_triplet_scorer(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::Clustering& clustering, std::size_t triplet_count,
    stats::Rng& rng, TripletScorerConfig config) {
    RELPERF_REQUIRE(assignments.size() == clustering.final_assignment.size(),
                    "fit_triplet_scorer: assignments/clustering mismatch");
    std::vector<std::vector<double>> rows;
    rows.reserve(assignments.size());
    for (const auto& assignment : assignments) {
        rows.push_back(extract_features(chain, assignment).values);
    }
    const std::vector<Triplet> triplets =
        sample_triplets(clustering, triplet_count, rng);
    TripletScorer scorer(config);
    scorer.fit(rows, triplets);
    return scorer;
}

} // namespace relperf::model
