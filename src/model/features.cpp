#include "model/features.hpp"

#include "support/error.hpp"

namespace relperf::model {

using workloads::Placement;

std::vector<std::string> feature_names(const workloads::TaskChain& chain) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::string suffix = "[" + chain.tasks[i].name + "]";
        names.push_back("dev_iters" + suffix);
        names.push_back("acc_iters" + suffix);
        names.push_back("enter_acc" + suffix);
        names.push_back("enter_dev" + suffix);
        names.push_back("resident" + suffix);
    }
    names.emplace_back("ends_on_acc");
    names.emplace_back("device_flops");
    names.emplace_back("accel_flops");
    names.emplace_back("accel_launches");
    names.emplace_back("link_bytes");
    return names;
}

FeatureVector extract_features(const workloads::TaskChain& chain,
                               const workloads::DeviceAssignment& assignment) {
    RELPERF_REQUIRE(chain.size() == assignment.size(),
                    "extract_features: assignment length must match chain length");
    FeatureVector features;
    features.values.reserve(5 * chain.size() + 5);

    double accel_launches = 0.0;
    Placement prev = Placement::Device;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Placement p = assignment.at(i);
        const double iters = static_cast<double>(chain.tasks[i].iters);
        const bool on_accel = p == Placement::Accelerator;
        features.values.push_back(on_accel ? 0.0 : iters);
        features.values.push_back(on_accel ? iters : 0.0);
        features.values.push_back(on_accel && prev == Placement::Device ? 1.0 : 0.0);
        features.values.push_back(!on_accel && prev == Placement::Accelerator ? 1.0
                                                                              : 0.0);
        features.values.push_back(on_accel && prev == Placement::Accelerator ? 1.0
                                                                             : 0.0);
        if (on_accel) {
            accel_launches += workloads::task_cost(chain.tasks[i]).op_launches;
        }
        prev = p;
    }
    features.values.push_back(prev == Placement::Accelerator ? 1.0 : 0.0);

    const workloads::FlopSplit split = workloads::flop_split(chain, assignment);
    features.values.push_back(split.on_device);
    features.values.push_back(split.on_accelerator);
    features.values.push_back(accel_launches);
    features.values.push_back(workloads::bytes_over_link(chain, assignment));
    return features;
}

std::vector<FeatureVector> extract_features(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments) {
    std::vector<FeatureVector> out;
    out.reserve(assignments.size());
    for (const workloads::DeviceAssignment& assignment : assignments) {
        out.push_back(extract_features(chain, assignment));
    }
    return out;
}

} // namespace relperf::model
