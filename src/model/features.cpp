#include "model/features.hpp"

#include "support/error.hpp"

namespace relperf::model {

using workloads::Placement;

std::vector<std::string> feature_names(const workloads::TaskChain& chain) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::string suffix = "[" + chain.tasks[i].name + "]";
        names.push_back("dev_iters" + suffix);
        names.push_back("acc_iters" + suffix);
        names.push_back("enter_acc" + suffix);
        names.push_back("enter_dev" + suffix);
        names.push_back("resident" + suffix);
    }
    names.emplace_back("ends_on_acc");
    names.emplace_back("device_flops");
    names.emplace_back("accel_flops");
    names.emplace_back("accel_launches");
    names.emplace_back("link_bytes");
    return names;
}

FeatureVector extract_features(const workloads::TaskChain& chain,
                               const workloads::DeviceAssignment& assignment) {
    RELPERF_REQUIRE(chain.size() == assignment.size(),
                    "extract_features: assignment length must match chain length");
    FeatureVector features;
    features.values.reserve(5 * chain.size() + 5);

    double accel_launches = 0.0;
    Placement prev = Placement::Device;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Placement p = assignment.at(i);
        const double iters = static_cast<double>(chain.tasks[i].iters);
        const bool on_accel = p == Placement::Accelerator;
        features.values.push_back(on_accel ? 0.0 : iters);
        features.values.push_back(on_accel ? iters : 0.0);
        features.values.push_back(on_accel && prev == Placement::Device ? 1.0 : 0.0);
        features.values.push_back(!on_accel && prev == Placement::Accelerator ? 1.0
                                                                              : 0.0);
        features.values.push_back(on_accel && prev == Placement::Accelerator ? 1.0
                                                                             : 0.0);
        if (on_accel) {
            accel_launches += workloads::task_cost(chain.tasks[i]).op_launches;
        }
        prev = p;
    }
    features.values.push_back(prev == Placement::Accelerator ? 1.0 : 0.0);

    const workloads::FlopSplit split = workloads::flop_split(chain, assignment);
    features.values.push_back(split.on_device);
    features.values.push_back(split.on_accelerator);
    features.values.push_back(accel_launches);
    features.values.push_back(workloads::bytes_over_link(chain, assignment));
    return features;
}

std::vector<FeatureVector> extract_features(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments) {
    std::vector<FeatureVector> out;
    out.reserve(assignments.size());
    for (const workloads::DeviceAssignment& assignment : assignments) {
        out.push_back(extract_features(chain, assignment));
    }
    return out;
}

std::string backend_feature_label(const std::string& backend) {
    return backend.empty() ? "inherit" : backend;
}

namespace {

/// Index of a task's resolved backend in the feature universe; throws when
/// the universe does not cover it (the predictor cannot represent a backend
/// it was never told about).
std::size_t backend_bucket(const std::string& resolved,
                           const std::vector<std::string>& backends) {
    for (std::size_t b = 0; b < backends.size(); ++b) {
        if (backends[b] == resolved) return b;
    }
    throw InvalidArgument("variant features: resolved backend '" +
                          backend_feature_label(resolved) +
                          "' is not in the feature backend universe");
}

} // namespace

std::vector<std::string> variant_feature_names(
    const workloads::TaskChain& chain, const std::vector<std::string>& backends) {
    RELPERF_REQUIRE(!backends.empty(),
                    "variant_feature_names: empty backend universe");
    std::vector<std::string> names;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::string suffix = "[" + chain.tasks[i].name + "]";
        for (const std::string& backend : backends) {
            const std::string label = backend_feature_label(backend);
            names.push_back("dev_iters@" + label + suffix);
            names.push_back("acc_iters@" + label + suffix);
        }
        names.push_back("enter_acc" + suffix);
        names.push_back("enter_dev" + suffix);
        names.push_back("resident" + suffix);
    }
    names.emplace_back("ends_on_acc");
    for (const std::string& backend : backends) {
        const std::string label = backend_feature_label(backend);
        names.push_back("device_flops@" + label);
        names.push_back("accel_flops@" + label);
    }
    names.emplace_back("accel_launches");
    names.emplace_back("link_bytes");
    return names;
}

FeatureVector extract_variant_features(
    const workloads::TaskChain& chain,
    const workloads::VariantAssignment& variant,
    const std::vector<std::string>& backends) {
    RELPERF_REQUIRE(chain.size() == variant.size(),
                    "extract_variant_features: assignment length must match "
                    "chain length");
    RELPERF_REQUIRE(!backends.empty(),
                    "extract_variant_features: empty backend universe");
    const std::size_t B = backends.size();
    FeatureVector features;
    features.values.reserve((2 * B + 3) * chain.size() + 2 * B + 3);

    std::vector<double> device_flops(B, 0.0);
    std::vector<double> accel_flops(B, 0.0);
    double accel_launches = 0.0;
    Placement prev = Placement::Device;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Placement p = variant.at(i).placement;
        const std::size_t bucket =
            backend_bucket(variant.resolved_backend(i, chain.backend), backends);
        const double iters = static_cast<double>(chain.tasks[i].iters);
        const bool on_accel = p == Placement::Accelerator;
        for (std::size_t b = 0; b < B; ++b) {
            features.values.push_back(!on_accel && b == bucket ? iters : 0.0);
            features.values.push_back(on_accel && b == bucket ? iters : 0.0);
        }
        features.values.push_back(on_accel && prev == Placement::Device ? 1.0 : 0.0);
        features.values.push_back(!on_accel && prev == Placement::Accelerator ? 1.0
                                                                              : 0.0);
        features.values.push_back(on_accel && prev == Placement::Accelerator ? 1.0
                                                                             : 0.0);
        const double flops = workloads::task_cost(chain.tasks[i]).flops;
        (on_accel ? accel_flops : device_flops)[bucket] += flops;
        if (on_accel) {
            accel_launches += workloads::task_cost(chain.tasks[i]).op_launches;
        }
        prev = p;
    }
    features.values.push_back(prev == Placement::Accelerator ? 1.0 : 0.0);
    for (std::size_t b = 0; b < B; ++b) {
        features.values.push_back(device_flops[b]);
        features.values.push_back(accel_flops[b]);
    }
    features.values.push_back(accel_launches);
    features.values.push_back(
        workloads::bytes_over_link(chain, variant.device_assignment()));
    return features;
}

std::vector<FeatureVector> extract_variant_features(
    const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants,
    const std::vector<std::string>& backends) {
    std::vector<FeatureVector> out;
    out.reserve(variants.size());
    for (const workloads::VariantAssignment& variant : variants) {
        out.push_back(extract_variant_features(chain, variant, backends));
    }
    return out;
}

} // namespace relperf::model
