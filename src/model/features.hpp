#pragma once
//! \file features.hpp
//! Feature extraction for relative-performance prediction — the paper's
//! future-work direction (Sec. V): "performance models that predict relative
//! scores without having to execute all the algorithms".
//!
//! The features describe a (chain, assignment) pair with physical quantities
//! a cost model would consume: per-task placement-weighted work, staging
//! transitions and residency pairs. They are chosen so that the conditional
//! cost models of src/sim lie exactly in the span of a linear predictor —
//! property-tested in tests/model/predictor_test.cpp.

#include "workloads/chain.hpp"

#include <string>
#include <vector>

namespace relperf::model {

/// Dense feature vector with stable ordering (see feature_names).
struct FeatureVector {
    std::vector<double> values;
};

/// Names of the features produced by extract_features for a k-task chain,
/// in order:
///   per task i in 0..k-1:
///     dev_iters[i]    — iterations executed on the Device (0 when on A),
///     acc_iters[i]    — iterations executed on the Accelerator,
///     enter_acc[i]    — 1 when task i switches D -> A,
///     enter_dev[i]    — 1 when task i switches A -> D,
///     resident[i]     — 1 when task i and its predecessor both run on A,
///   chain-level:
///     ends_on_acc     — 1 when the last task runs on the Accelerator,
///     device_flops    — FLOPs executed on the Device,
///     accel_flops     — FLOPs executed on the Accelerator,
///     accel_launches  — kernel launches dispatched to the Accelerator,
///     link_bytes      — bytes crossing the link.
[[nodiscard]] std::vector<std::string> feature_names(const workloads::TaskChain& chain);

/// Extracts the features of one assignment; assignment length must match the
/// chain.
[[nodiscard]] FeatureVector extract_features(const workloads::TaskChain& chain,
                                             const workloads::DeviceAssignment& assignment);

/// Feature matrix for many assignments (rows in the given order).
[[nodiscard]] std::vector<FeatureVector> extract_features(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments);

/// The label used in variant feature names for the empty "inherit the
/// ambient backend" bucket.
[[nodiscard]] std::string backend_feature_label(const std::string& backend);

/// Names of the variant features for a k-task chain over the backend
/// universe `backends` (the distinct resolved backends of the variant set;
/// may contain "" for the inherit bucket). The per-task iteration features
/// split by backend — `dev_iters@b[i]` / `acc_iters@b[i]` — and the
/// chain-level FLOP features become backend-weighted (`device_flops@b`,
/// `accel_flops@b`), so per-(task, backend) throughput multipliers of the
/// simulator's cost models still lie exactly in the span of a linear
/// predictor. Transition/residency features are backend-independent (staging
/// is data movement) and keep their placement-only form.
[[nodiscard]] std::vector<std::string> variant_feature_names(
    const workloads::TaskChain& chain, const std::vector<std::string>& backends);

/// Extracts the variant features of one (chain, variant) pair. Every task's
/// resolved backend (policy backend, else the chain default) must appear in
/// `backends`; throws InvalidArgument otherwise.
[[nodiscard]] FeatureVector extract_variant_features(
    const workloads::TaskChain& chain,
    const workloads::VariantAssignment& variant,
    const std::vector<std::string>& backends);

/// Variant feature matrix (rows in the given order).
[[nodiscard]] std::vector<FeatureVector> extract_variant_features(
    const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants,
    const std::vector<std::string>& backends);

} // namespace relperf::model
