#include "model/ridge.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/syrk.hpp"
#include "support/error.hpp"

#include <cmath>

namespace relperf::model {

void RidgeRegressor::fit(const std::vector<std::vector<double>>& rows,
                         std::span<const double> targets, double lambda) {
    RELPERF_REQUIRE(!rows.empty(), "RidgeRegressor: no training rows");
    RELPERF_REQUIRE(rows.size() == targets.size(),
                    "RidgeRegressor: row/target count mismatch");
    RELPERF_REQUIRE(lambda >= 0.0, "RidgeRegressor: lambda must be >= 0");
    const std::size_t n = rows.size();
    const std::size_t p = rows.front().size();
    RELPERF_REQUIRE(p > 0, "RidgeRegressor: empty feature vectors");
    for (const auto& row : rows) {
        RELPERF_REQUIRE(row.size() == p, "RidgeRegressor: ragged feature rows");
    }

    // Standardize features (constant columns get scale 1 => standardized 0,
    // harmless under the ridge penalty).
    feature_mean_.assign(p, 0.0);
    feature_scale_.assign(p, 1.0);
    for (std::size_t j = 0; j < p; ++j) {
        double sum = 0.0;
        for (const auto& row : rows) sum += row[j];
        feature_mean_[j] = sum / static_cast<double>(n);
        double ssq = 0.0;
        for (const auto& row : rows) {
            const double d = row[j] - feature_mean_[j];
            ssq += d * d;
        }
        const double sd = std::sqrt(ssq / static_cast<double>(n));
        feature_scale_[j] = sd > 0.0 ? sd : 1.0;
    }
    target_mean_ = 0.0;
    for (const double y : targets) target_mean_ += y;
    target_mean_ /= static_cast<double>(n);

    linalg::Matrix x(n, p);
    linalg::Matrix y(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
            x(i, j) = (rows[i][j] - feature_mean_[j]) / feature_scale_[j];
        }
        y(i, 0) = targets[i] - target_mean_;
    }

    // Normal equations with ridge: (XᵀX + lambda I) w = Xᵀ y.
    linalg::Matrix gram = linalg::gram(x);
    // Floor keeps the system SPD even with lambda == 0 and n < p.
    gram.add_scaled_identity(lambda + 1e-10);
    linalg::Matrix rhs(p, 1);
    linalg::gemm(1.0, x.transposed(), y, 0.0, rhs);
    linalg::cholesky_factor(gram);
    linalg::solve_lower(gram, rhs);
    linalg::solve_lower_transposed(gram, rhs);

    weights_.resize(p);
    for (std::size_t j = 0; j < p; ++j) weights_[j] = rhs(j, 0);
    fitted_ = true;
}

double RidgeRegressor::predict(std::span<const double> row) const {
    RELPERF_REQUIRE(fitted_, "RidgeRegressor: predict before fit");
    RELPERF_REQUIRE(row.size() == weights_.size(),
                    "RidgeRegressor: feature dimension mismatch");
    double acc = target_mean_;
    for (std::size_t j = 0; j < row.size(); ++j) {
        acc += weights_[j] * (row[j] - feature_mean_[j]) / feature_scale_[j];
    }
    return acc;
}

double RidgeRegressor::r_squared(const std::vector<std::vector<double>>& rows,
                                 std::span<const double> targets) const {
    RELPERF_REQUIRE(rows.size() == targets.size() && !rows.empty(),
                    "RidgeRegressor: r_squared input mismatch");
    double y_mean = 0.0;
    for (const double y : targets) y_mean += y;
    y_mean /= static_cast<double>(targets.size());

    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const double err = targets[i] - predict(rows[i]);
        ss_res += err * err;
        const double dev = targets[i] - y_mean;
        ss_tot += dev * dev;
    }
    if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

} // namespace relperf::model
