#include "model/predictor.hpp"

#include "stats/descriptive.hpp"
#include "stats/ranking.hpp"
#include "support/error.hpp"

#include <cmath>

namespace relperf::model {

PerformancePredictor::PerformancePredictor(PredictorConfig config)
    : config_(config) {
    RELPERF_REQUIRE(config_.ridge_lambda >= 0.0,
                    "PerformancePredictor: lambda must be >= 0");
    RELPERF_REQUIRE(config_.tie_epsilon >= 0.0,
                    "PerformancePredictor: tie_epsilon must be >= 0");
}

void PerformancePredictor::fit(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::MeasurementSet& measurements) {
    RELPERF_REQUIRE(assignments.size() == measurements.size(),
                    "PerformancePredictor: assignments/measurements mismatch");
    RELPERF_REQUIRE(assignments.size() >= 2,
                    "PerformancePredictor: need at least two training points");

    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    rows.reserve(assignments.size());
    targets.reserve(assignments.size());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        rows.push_back(extract_features(chain, assignments[i]).values);
        targets.push_back(stats::mean(measurements.samples(i)));
    }
    regressor_.fit(rows, targets, config_.ridge_lambda);
}

double PerformancePredictor::predict_seconds(
    const workloads::TaskChain& chain,
    const workloads::DeviceAssignment& assignment) const {
    return regressor_.predict(extract_features(chain, assignment).values);
}

core::Ordering PerformancePredictor::compare(
    const workloads::TaskChain& chain, const workloads::DeviceAssignment& a,
    const workloads::DeviceAssignment& b) const {
    const double ta = predict_seconds(chain, a);
    const double tb = predict_seconds(chain, b);
    const double band =
        config_.tie_epsilon * std::min(std::fabs(ta), std::fabs(tb));
    if (std::fabs(ta - tb) <= band) return core::Ordering::Equivalent;
    return ta < tb ? core::Ordering::Better : core::Ordering::Worse;
}

core::RankedSequence PerformancePredictor::rank(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments) const {
    RELPERF_REQUIRE(!assignments.empty(), "PerformancePredictor: empty set");
    const core::ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return compare(chain, assignments[a], assignments[b]);
    });
    return sorter.sort(assignments.size());
}

PredictionEval evaluate_predictor(
    const PerformancePredictor& predictor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::MeasurementSet& measurements, const core::Clustering& clustering) {
    RELPERF_REQUIRE(assignments.size() == measurements.size(),
                    "evaluate_predictor: assignments/measurements mismatch");
    RELPERF_REQUIRE(assignments.size() >= 2,
                    "evaluate_predictor: need at least two assignments");

    std::vector<double> measured;
    std::vector<double> predicted;
    double rel_error = 0.0;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        measured.push_back(stats::mean(measurements.samples(i)));
        predicted.push_back(predictor.predict_seconds(chain, assignments[i]));
        rel_error += std::fabs(predicted[i] - measured[i]) / measured[i];
    }

    PredictionEval eval;
    eval.kendall_tau = stats::kendall_tau_b(predicted, measured);
    eval.spearman_rho = stats::spearman_rho(predicted, measured);
    eval.pairwise_disagreement = stats::pairwise_disagreement(measured, predicted);
    eval.mean_abs_rel_error = rel_error / static_cast<double>(assignments.size());

    const core::RankedSequence predicted_ranks =
        predictor.rank(chain, assignments);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        if (predicted_ranks.rank_of(i) == clustering.final_rank(i)) ++agree;
    }
    eval.rank_agreement =
        static_cast<double>(agree) / static_cast<double>(assignments.size());
    return eval;
}

} // namespace relperf::model
