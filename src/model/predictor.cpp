#include "model/predictor.hpp"

#include "stats/descriptive.hpp"
#include "stats/ranking.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>

namespace relperf::model {

PerformancePredictor::PerformancePredictor(PredictorConfig config)
    : config_(config) {
    RELPERF_REQUIRE(config_.ridge_lambda >= 0.0,
                    "PerformancePredictor: lambda must be >= 0");
    RELPERF_REQUIRE(config_.tie_epsilon >= 0.0,
                    "PerformancePredictor: tie_epsilon must be >= 0");
}

void PerformancePredictor::fit(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::MeasurementSet& measurements) {
    RELPERF_REQUIRE(assignments.size() == measurements.size(),
                    "PerformancePredictor: assignments/measurements mismatch");
    RELPERF_REQUIRE(assignments.size() >= 2,
                    "PerformancePredictor: need at least two training points");

    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    rows.reserve(assignments.size());
    targets.reserve(assignments.size());
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        rows.push_back(extract_features(chain, assignments[i]).values);
        targets.push_back(stats::mean(measurements.samples(i)));
    }
    regressor_.fit(rows, targets, config_.ridge_lambda);
    variant_mode_ = false;
    backend_universe_.clear();
}

void PerformancePredictor::fit(
    const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants,
    const core::MeasurementSet& measurements) {
    // The backend universe: every resolved backend of the training set, in
    // first-seen order (deterministic for a deterministic variant list).
    std::vector<std::string> universe;
    for (const workloads::VariantAssignment& variant : variants) {
        for (std::size_t i = 0; i < variant.size(); ++i) {
            const std::string& resolved =
                variant.resolved_backend(i, chain.backend);
            if (std::find(universe.begin(), universe.end(), resolved) ==
                universe.end()) {
                universe.push_back(resolved);
            }
        }
    }
    fit(chain, variants, measurements, std::move(universe));
}

void PerformancePredictor::fit(
    const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants,
    const core::MeasurementSet& measurements,
    std::vector<std::string> backend_universe) {
    RELPERF_REQUIRE(variants.size() == measurements.size(),
                    "PerformancePredictor: variants/measurements mismatch");
    RELPERF_REQUIRE(variants.size() >= 2,
                    "PerformancePredictor: need at least two training points");
    RELPERF_REQUIRE(!backend_universe.empty(),
                    "PerformancePredictor: empty backend universe");

    std::vector<std::vector<double>> rows;
    std::vector<double> targets;
    rows.reserve(variants.size());
    targets.reserve(variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
        rows.push_back(
            extract_variant_features(chain, variants[i], backend_universe)
                .values);
        targets.push_back(stats::mean(measurements.samples(i)));
    }
    regressor_.fit(rows, targets, config_.ridge_lambda);
    variant_mode_ = true;
    backend_universe_ = std::move(backend_universe);
}

double PerformancePredictor::predict_seconds(
    const workloads::TaskChain& chain,
    const workloads::DeviceAssignment& assignment) const {
    if (variant_mode_) {
        return predict_seconds(chain, workloads::VariantAssignment(assignment));
    }
    return regressor_.predict(extract_features(chain, assignment).values);
}

double PerformancePredictor::predict_seconds(
    const workloads::TaskChain& chain,
    const workloads::VariantAssignment& variant) const {
    if (!variant_mode_) {
        // Fitted on plain assignments: only the backend-inherit projection is
        // representable in the legacy feature space.
        RELPERF_REQUIRE(variant.uniform_inherit(),
                        "PerformancePredictor: fitted on plain assignments; "
                        "cannot predict a mixed-backend variant");
        return regressor_.predict(
            extract_features(chain, variant.device_assignment()).values);
    }
    return regressor_.predict(
        extract_variant_features(chain, variant, backend_universe_).values);
}

namespace {

/// Shared tie-band decision over two predicted times.
core::Ordering compare_predicted(double ta, double tb, double tie_epsilon) {
    const double band = tie_epsilon * std::min(std::fabs(ta), std::fabs(tb));
    if (std::fabs(ta - tb) <= band) return core::Ordering::Equivalent;
    return ta < tb ? core::Ordering::Better : core::Ordering::Worse;
}

} // namespace

core::Ordering PerformancePredictor::compare(
    const workloads::TaskChain& chain, const workloads::DeviceAssignment& a,
    const workloads::DeviceAssignment& b) const {
    return compare_predicted(predict_seconds(chain, a),
                             predict_seconds(chain, b), config_.tie_epsilon);
}

core::Ordering PerformancePredictor::compare(
    const workloads::TaskChain& chain, const workloads::VariantAssignment& a,
    const workloads::VariantAssignment& b) const {
    return compare_predicted(predict_seconds(chain, a),
                             predict_seconds(chain, b), config_.tie_epsilon);
}

core::RankedSequence PerformancePredictor::rank(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments) const {
    RELPERF_REQUIRE(!assignments.empty(), "PerformancePredictor: empty set");
    const core::ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return compare(chain, assignments[a], assignments[b]);
    });
    return sorter.sort(assignments.size());
}

core::RankedSequence PerformancePredictor::rank(
    const workloads::TaskChain& chain,
    const std::vector<workloads::VariantAssignment>& variants) const {
    RELPERF_REQUIRE(!variants.empty(), "PerformancePredictor: empty set");
    const core::ThreeWaySorter sorter([&](std::size_t a, std::size_t b) {
        return compare(chain, variants[a], variants[b]);
    });
    return sorter.sort(variants.size());
}

PredictionEval evaluate_predictor(
    const PerformancePredictor& predictor, const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::MeasurementSet& measurements, const core::Clustering& clustering) {
    RELPERF_REQUIRE(assignments.size() == measurements.size(),
                    "evaluate_predictor: assignments/measurements mismatch");
    RELPERF_REQUIRE(assignments.size() >= 2,
                    "evaluate_predictor: need at least two assignments");

    std::vector<double> measured;
    std::vector<double> predicted;
    double rel_error = 0.0;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        measured.push_back(stats::mean(measurements.samples(i)));
        predicted.push_back(predictor.predict_seconds(chain, assignments[i]));
        rel_error += std::fabs(predicted[i] - measured[i]) / measured[i];
    }

    PredictionEval eval;
    eval.kendall_tau = stats::kendall_tau_b(predicted, measured);
    eval.spearman_rho = stats::spearman_rho(predicted, measured);
    eval.pairwise_disagreement = stats::pairwise_disagreement(measured, predicted);
    eval.mean_abs_rel_error = rel_error / static_cast<double>(assignments.size());

    const core::RankedSequence predicted_ranks =
        predictor.rank(chain, assignments);
    std::size_t agree = 0;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        if (predicted_ranks.rank_of(i) == clustering.final_rank(i)) ++agree;
    }
    eval.rank_agreement =
        static_cast<double>(agree) / static_cast<double>(assignments.size());
    return eval;
}

} // namespace relperf::model
