#pragma once
//! \file triplet.hpp
//! Triplet-based ranking — the paper's proposed training regime (Sec. I):
//! "performance models for automatic algorithm selection can obtain better
//! accuracy when trained with a particular loss function, known as Triplet
//! loss, where both positive (fast algorithm) and negative (worst algorithm)
//! example are used to train the model; for such a training, the algorithms
//! clustered into different performance classes would be required."
//!
//! The clustering provides exactly that supervision: an anchor and a
//! *positive* share a performance class, a *negative* comes from a strictly
//! worse class. The TripletScorer learns a linear score s(x) = w.x (lower =
//! faster) from class labels only — no absolute execution times — by
//! minimizing hinge losses
//!
//!   rank loss: max(0, margin - (s(negative) - s(anchor)))
//!   tie  loss: max(0, |s(anchor) - s(positive)| - tie_margin)
//!
//! with SGD over standardized features.

#include "core/clustering.hpp"
#include "model/features.hpp"
#include "stats/rng.hpp"
#include "workloads/chain.hpp"

#include <vector>

namespace relperf::model {

/// Index triple into an algorithm set.
struct Triplet {
    std::size_t anchor = 0;
    std::size_t positive = 0; ///< Same final class as the anchor.
    std::size_t negative = 0; ///< Strictly worse final class.
};

/// Samples `count` triplets from a clustering's final assignment. Requires at
/// least one class with >= 2 members and one strictly worse algorithm;
/// throws InvalidArgument otherwise. Deterministic in the Rng.
[[nodiscard]] std::vector<Triplet> sample_triplets(const core::Clustering& clustering,
                                                   std::size_t count,
                                                   stats::Rng& rng);

struct TripletScorerConfig {
    double margin = 1.0;        ///< Required score gap anchor -> negative.
    double tie_margin = 0.25;   ///< Allowed score gap anchor <-> positive.
    double learning_rate = 0.05;
    std::size_t epochs = 300;
    double l2 = 1e-4;           ///< Weight decay.
    std::uint64_t seed = 0x7122; ///< SGD shuffling seed.

    void validate() const;
};

/// Linear ranking model trained from triplets.
class TripletScorer {
public:
    explicit TripletScorer(TripletScorerConfig config = {});

    /// Fits on feature rows (one per algorithm) and triplets over them.
    void fit(const std::vector<std::vector<double>>& rows,
             const std::vector<Triplet>& triplets);

    /// Relative score (lower = predicted faster). Comparable only within one
    /// fitted model.
    [[nodiscard]] double score(std::span<const double> row) const;

    [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }

    /// Fraction of training triplets with the anchor scored at least
    /// `margin` below the negative (diagnostics).
    [[nodiscard]] double triplet_satisfaction(
        const std::vector<std::vector<double>>& rows,
        const std::vector<Triplet>& triplets) const;

private:
    TripletScorerConfig config_;
    std::vector<double> weights_;
    std::vector<double> feature_mean_;
    std::vector<double> feature_scale_;
    bool fitted_ = false;
};

/// Convenience: fit a scorer for a chain's assignments directly from a
/// measured clustering (class labels only).
[[nodiscard]] TripletScorer fit_triplet_scorer(
    const workloads::TaskChain& chain,
    const std::vector<workloads::DeviceAssignment>& assignments,
    const core::Clustering& clustering, std::size_t triplet_count,
    stats::Rng& rng, TripletScorerConfig config = {});

} // namespace relperf::model
