#pragma once
//! \file ridge.hpp
//! Ridge (L2-regularized least squares) regression on top of relperf_linalg.
//! Solves (XᵀX + λI) w = Xᵀy via Gram + Cholesky — the same kernels the
//! paper's MathTask exercises, now reused as the learning substrate.
//!
//! Features and targets are standardized internally (centered, unit scale)
//! so the penalty treats all features equally and no explicit bias term is
//! needed.

#include "linalg/matrix.hpp"

#include <span>
#include <vector>

namespace relperf::model {

class RidgeRegressor {
public:
    /// Fits w = argmin ||Xw - y||^2 + lambda ||w||^2 on standardized data.
    /// `rows` must all have the same dimension; lambda >= 0.
    void fit(const std::vector<std::vector<double>>& rows,
             std::span<const double> targets, double lambda);

    /// Predicts one standardized-and-restored target.
    [[nodiscard]] double predict(std::span<const double> row) const;

    [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }
    [[nodiscard]] std::size_t feature_count() const noexcept {
        return weights_.size();
    }
    /// Weights in the standardized space (diagnostics).
    [[nodiscard]] const std::vector<double>& weights() const noexcept {
        return weights_;
    }

    /// Coefficient of determination on a dataset (1 = perfect).
    [[nodiscard]] double r_squared(const std::vector<std::vector<double>>& rows,
                                   std::span<const double> targets) const;

private:
    std::vector<double> weights_;      // standardized space
    std::vector<double> feature_mean_;
    std::vector<double> feature_scale_; // 1 for constant features
    double target_mean_ = 0.0;
    bool fitted_ = false;
};

} // namespace relperf::model
