#include "linalg/rls.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/syrk.hpp"
#include "support/error.hpp"

namespace relperf::linalg {

Matrix rls_solve(const Matrix& a, const Matrix& b, double penalty) {
    RELPERF_REQUIRE(a.rows() >= a.cols(), "rls_solve: A must be square or tall");
    RELPERF_REQUIRE(a.rows() == b.rows(), "rls_solve: A and B row counts differ");
    RELPERF_REQUIRE(penalty >= 0.0, "rls_solve: penalty must be non-negative");

    // Gram matrix G = AᵀA, regularized.
    Matrix g = gram(a);
    // Guard floor: random A can be ill-conditioned when penalty == 0.
    const double floor = 1e-10 * static_cast<double>(a.cols());
    g.add_scaled_identity(penalty > floor ? penalty : floor);

    // Right-hand side AᵀB.
    const Matrix at = a.transposed();
    Matrix rhs(a.cols(), b.cols());
    gemm(1.0, at, b, 0.0, rhs);

    // Cholesky solve.
    cholesky_factor(g);
    solve_lower(g, rhs);
    solve_lower_transposed(g, rhs);
    return rhs;
}

double rls_residual(const Matrix& a, const Matrix& b, const Matrix& z) {
    RELPERF_REQUIRE(a.cols() == z.rows(), "rls_residual: A/Z shape mismatch");
    RELPERF_REQUIRE(a.rows() == b.rows() && z.cols() == b.cols(),
                    "rls_residual: B shape mismatch");
    Matrix az(a.rows(), z.cols());
    gemm(1.0, a, z, 0.0, az);
    return subtract(az, b).frobenius_norm();
}

double rls_flops(std::size_t n) noexcept {
    const double dn = static_cast<double>(n);
    const double gram_cost = gram_flops(n, n);
    const double chol = cholesky_flops(n);
    const double atb = gemm_flops(n, n, n);
    const double solves = 2.0 * trsm_flops(n, n);
    const double residual = gemm_flops(n, n, n) + dn * dn /*sub*/ + 2.0 * dn * dn /*norm*/;
    return gram_cost + dn /*add identity*/ + chol + atb + solves + residual;
}

} // namespace relperf::linalg
