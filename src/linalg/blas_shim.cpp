//! Bundled Fortran-ABI BLAS/LAPACK shim — compiled only with
//! -DRELPERF_BLAS_SHIM=ON, and mutually exclusive with a found vendor BLAS.
//!
//! Purpose: let the `blas` backend (backend_blas.cpp) — including its
//! row-major/column-major bridging and its error mapping — build, run and be
//! parity-tested on machines and CI jobs that have no vendor BLAS installed.
//! It is a *correctness* stand-in, not a performance one: plain column-major
//! loops with Fortran calling conventions (leading-dimension arguments,
//! info codes, beta==0 "C is not read" semantics).

#include <cmath>
#include <cstddef>

namespace {

inline bool is_trans(char t) {
    return t == 'T' || t == 't' || t == 'C' || t == 'c';
}

inline bool is_upper(char u) { return u == 'U' || u == 'u'; }

// Column-major element access: X(i, j) of a matrix with leading dim ld.
inline const double& cm(const double* x, int ld, int i, int j) {
    return x[static_cast<std::size_t>(j) * static_cast<std::size_t>(ld) +
             static_cast<std::size_t>(i)];
}
inline double& cm(double* x, int ld, int i, int j) {
    return x[static_cast<std::size_t>(j) * static_cast<std::size_t>(ld) +
             static_cast<std::size_t>(i)];
}

} // namespace

extern "C" {

// C (m x n) = alpha * op(A) * op(B) + beta * C, column-major.
void dgemm_(const char* transa, const char* transb, const int* m, const int* n,
            const int* k, const double* alpha, const double* a, const int* lda,
            const double* b, const int* ldb, const double* beta, double* c,
            const int* ldc) {
    const bool ta = is_trans(*transa);
    const bool tb = is_trans(*transb);
    for (int j = 0; j < *n; ++j) {
        for (int i = 0; i < *m; ++i) {
            double acc = 0.0;
            for (int p = 0; p < *k; ++p) {
                const double av = ta ? cm(a, *lda, p, i) : cm(a, *lda, i, p);
                const double bv = tb ? cm(b, *ldb, j, p) : cm(b, *ldb, p, j);
                acc += av * bv;
            }
            double& out = cm(c, *ldc, i, j);
            out = *beta == 0.0 ? *alpha * acc : *alpha * acc + *beta * out;
        }
    }
}

// C (n x n, one triangle) = alpha * op(A) * op(A)ᵀ + beta * C, column-major.
// trans = 'N': A is n x k; trans = 'T': A is k x n and op(A) = Aᵀ.
void dsyrk_(const char* uplo, const char* trans, const int* n, const int* k,
            const double* alpha, const double* a, const int* lda,
            const double* beta, double* c, const int* ldc) {
    const bool tr = is_trans(*trans);
    const bool up = is_upper(*uplo);
    for (int j = 0; j < *n; ++j) {
        const int i_lo = up ? 0 : j;
        const int i_hi = up ? j : *n - 1;
        for (int i = i_lo; i <= i_hi; ++i) {
            double acc = 0.0;
            for (int p = 0; p < *k; ++p) {
                const double av = tr ? cm(a, *lda, p, i) : cm(a, *lda, i, p);
                const double bv = tr ? cm(a, *lda, p, j) : cm(a, *lda, j, p);
                acc += av * bv;
            }
            double& out = cm(c, *ldc, i, j);
            out = *beta == 0.0 ? *alpha * acc : *alpha * acc + *beta * out;
        }
    }
}

// Cholesky factorization of the `uplo` triangle, column-major. info > 0:
// leading minor of that order is not positive definite (1-based, like
// LAPACK); info < 0: invalid argument (1-based position).
void dpotrf_(const char* uplo, const int* n, double* a, const int* lda,
             int* info) {
    *info = 0;
    const bool up = is_upper(*uplo);
    if (!up && !(*uplo == 'L' || *uplo == 'l')) {
        *info = -1;
        return;
    }
    if (*n < 0) {
        *info = -2;
        return;
    }
    if (*lda < (*n > 1 ? *n : 1)) {
        *info = -4;
        return;
    }
    for (int j = 0; j < *n; ++j) {
        for (int i = 0; i < j; ++i) {
            // Off-diagonal of column j (upper) / row j (lower).
            double acc = up ? cm(a, *lda, i, j) : cm(a, *lda, j, i);
            for (int p = 0; p < i; ++p) {
                acc -= up ? cm(a, *lda, p, i) * cm(a, *lda, p, j)
                          : cm(a, *lda, i, p) * cm(a, *lda, j, p);
            }
            acc /= cm(a, *lda, i, i);
            (up ? cm(a, *lda, i, j) : cm(a, *lda, j, i)) = acc;
        }
        double diag = cm(a, *lda, j, j);
        for (int p = 0; p < j; ++p) {
            const double v = up ? cm(a, *lda, p, j) : cm(a, *lda, j, p);
            diag -= v * v;
        }
        if (!(diag > 0.0)) {
            *info = j + 1;
            return;
        }
        cm(a, *lda, j, j) = std::sqrt(diag);
    }
}

} // extern "C"
