#pragma once
//! \file matrix.hpp
//! Dense row-major matrix of doubles — the container for every linalg kernel.
//!
//! Design notes (C++ Core Guidelines): value semantics with move support, no
//! raw owning pointers, contiguous storage exposed as std::span for kernels,
//! checked element access in the API with unchecked `operator()` kept inline
//! for hot loops.

#include "stats/rng.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace relperf::linalg {

class Matrix {
public:
    /// Empty 0x0 matrix.
    Matrix() noexcept = default;

    /// rows x cols matrix, zero-initialized.
    Matrix(std::size_t rows, std::size_t cols);

    /// rows x cols matrix filled with `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
    [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

    /// Unchecked element access (hot loops).
    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    /// Checked element access; throws InvalidArgument out of range.
    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    [[nodiscard]] const double& at(std::size_t r, std::size_t c) const;

    /// Contiguous row-major storage.
    [[nodiscard]] std::span<double> data() noexcept { return data_; }
    [[nodiscard]] std::span<const double> data() const noexcept { return data_; }
    [[nodiscard]] std::span<double> row(std::size_t r);
    [[nodiscard]] std::span<const double> row(std::size_t r) const;

    void fill(double value) noexcept;
    void set_zero() noexcept { fill(0.0); }

    /// Identity of size n (static factory).
    [[nodiscard]] static Matrix identity(std::size_t n);

    /// Matrix with i.i.d. U(-1, 1) entries — the paper's "randomly generate
    /// A, B" step of Procedure 6.
    [[nodiscard]] static Matrix random_uniform(std::size_t rows, std::size_t cols,
                                               stats::Rng& rng);

    /// Matrix with i.i.d. N(0, 1) entries.
    [[nodiscard]] static Matrix random_normal(std::size_t rows, std::size_t cols,
                                              stats::Rng& rng);

    /// Returns the transpose.
    [[nodiscard]] Matrix transposed() const;

    /// this += alpha * I; requires square.
    void add_scaled_identity(double alpha);

    /// Frobenius norm.
    [[nodiscard]] double frobenius_norm() const noexcept;

    /// Max |a_ij - b_ij|; requires equal shapes.
    [[nodiscard]] double max_abs_diff(const Matrix& other) const;

    /// Element-wise equality of shapes and values.
    [[nodiscard]] bool operator==(const Matrix& other) const noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// C = A - B (shape-checked).
[[nodiscard]] Matrix subtract(const Matrix& a, const Matrix& b);

/// C = A + B (shape-checked).
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);

} // namespace relperf::linalg
