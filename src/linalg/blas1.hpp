#pragma once
//! \file blas1.hpp
//! Vector (BLAS-1) kernels used by the factorizations and solvers.

#include <span>

namespace relperf::linalg {

/// y += alpha * x (sizes must match).
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Dot product.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x) noexcept;

/// Euclidean norm with overflow-safe scaling.
[[nodiscard]] double nrm2(std::span<const double> x) noexcept;

/// Index of the element with the largest absolute value; requires non-empty.
[[nodiscard]] std::size_t iamax(std::span<const double> x);

} // namespace relperf::linalg
