#pragma once
//! \file syrk.hpp
//! Symmetric rank-k update specialized for the Gram matrix the RLS task
//! needs: C = Aᵀ A (exploits symmetry, computes the lower triangle and
//! mirrors it).

#include "linalg/matrix.hpp"

namespace relperf::linalg {

/// C = Aᵀ A, full (mirrored) storage. C is resized/overwritten.
void gram(const Matrix& a, Matrix& c);

/// Convenience returning a fresh Gram matrix.
[[nodiscard]] Matrix gram(const Matrix& a);

/// FLOPs of the Gram computation: n*(n+1)*m (n = cols, m = rows).
[[nodiscard]] constexpr double gram_flops(std::size_t m, std::size_t n) noexcept {
    return static_cast<double>(n) * static_cast<double>(n + 1) *
           static_cast<double>(m);
}

} // namespace relperf::linalg
