#pragma once
//! \file syrk.hpp
//! Symmetric rank-k update specialized for the Gram matrix the RLS task
//! needs: C = Aᵀ A (exploits symmetry, computes the lower triangle and
//! mirrors it).
//!
//! `gram` dispatches through the active backend (see backend.hpp);
//! `gram_blocked` is the portable blocked kernel and `gram_reference` the
//! textbook oracle. All three produce full (mirrored) storage and resize C.

#include "linalg/matrix.hpp"

namespace relperf::linalg {

/// C = Aᵀ A via the active backend; C is resized/overwritten.
void gram(const Matrix& a, Matrix& c);

/// Textbook triple loop (single-threaded). Oracle for tests.
void gram_reference(const Matrix& a, Matrix& c);

/// Blocked, OpenMP-parallel lower-triangle kernel (the `portable` backend).
void gram_blocked(const Matrix& a, Matrix& c);

/// Convenience returning a fresh Gram matrix (active backend).
[[nodiscard]] Matrix gram(const Matrix& a);

/// FLOPs of the Gram computation: n*(n+1)*m (n = cols, m = rows).
[[nodiscard]] constexpr double gram_flops(std::size_t m, std::size_t n) noexcept {
    return static_cast<double>(n) * static_cast<double>(n + 1) *
           static_cast<double>(m);
}

} // namespace relperf::linalg
