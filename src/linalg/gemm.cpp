#include "linalg/gemm.hpp"

#include "linalg/backend.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace relperf::linalg {

namespace {

std::atomic<int> g_gemm_threads{0};

// Blocking parameters tuned for ~32 KiB L1 / 1 MiB L2 per core.
constexpr std::size_t kBlockM = 64;  // rows of A per macro block
constexpr std::size_t kBlockN = 256; // cols of B per macro block
constexpr std::size_t kBlockK = 256; // shared dimension per macro block

constexpr std::size_t kMicroM = 4; // micro-kernel rows
constexpr std::size_t kMicroN = 4; // micro-kernel cols

void check_shapes(const Matrix& a, const Matrix& b, const Matrix& c) {
    RELPERF_REQUIRE(a.cols() == b.rows(), "gemm: inner dimensions differ");
    RELPERF_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                    "gemm: output shape mismatch");
}

/// 4x4 register micro-kernel: C[4][4] += A-panel (4 x kc) * B-panel (kc x 4).
/// `a` is row-major with stride `lda`; `bp` is packed row-major kc x 4.
inline void micro_kernel_4x4(std::size_t kc, const double* a, std::size_t lda,
                             const double* bp, double* c, std::size_t ldc) noexcept {
    double acc00 = 0, acc01 = 0, acc02 = 0, acc03 = 0;
    double acc10 = 0, acc11 = 0, acc12 = 0, acc13 = 0;
    double acc20 = 0, acc21 = 0, acc22 = 0, acc23 = 0;
    double acc30 = 0, acc31 = 0, acc32 = 0, acc33 = 0;
    for (std::size_t p = 0; p < kc; ++p) {
        const double b0 = bp[p * kMicroN + 0];
        const double b1 = bp[p * kMicroN + 1];
        const double b2 = bp[p * kMicroN + 2];
        const double b3 = bp[p * kMicroN + 3];
        const double a0 = a[0 * lda + p];
        const double a1 = a[1 * lda + p];
        const double a2 = a[2 * lda + p];
        const double a3 = a[3 * lda + p];
        acc00 += a0 * b0; acc01 += a0 * b1; acc02 += a0 * b2; acc03 += a0 * b3;
        acc10 += a1 * b0; acc11 += a1 * b1; acc12 += a1 * b2; acc13 += a1 * b3;
        acc20 += a2 * b0; acc21 += a2 * b1; acc22 += a2 * b2; acc23 += a2 * b3;
        acc30 += a3 * b0; acc31 += a3 * b1; acc32 += a3 * b2; acc33 += a3 * b3;
    }
    c[0 * ldc + 0] += acc00; c[0 * ldc + 1] += acc01; c[0 * ldc + 2] += acc02; c[0 * ldc + 3] += acc03;
    c[1 * ldc + 0] += acc10; c[1 * ldc + 1] += acc11; c[1 * ldc + 2] += acc12; c[1 * ldc + 3] += acc13;
    c[2 * ldc + 0] += acc20; c[2 * ldc + 1] += acc21; c[2 * ldc + 2] += acc22; c[2 * ldc + 3] += acc23;
    c[3 * ldc + 0] += acc30; c[3 * ldc + 1] += acc31; c[3 * ldc + 2] += acc32; c[3 * ldc + 3] += acc33;
}

/// Generic edge kernel for fringe tiles smaller than 4x4.
inline void edge_kernel(std::size_t mr, std::size_t nr, std::size_t kc,
                        const double* a, std::size_t lda, const double* bp,
                        double* c, std::size_t ldc) noexcept {
    for (std::size_t i = 0; i < mr; ++i) {
        for (std::size_t j = 0; j < nr; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < kc; ++p) {
                acc += a[i * lda + p] * bp[p * kMicroN + j];
            }
            c[i * ldc + j] += acc;
        }
    }
}

} // namespace

void set_gemm_threads(int threads) noexcept {
    g_gemm_threads.store(threads < 0 ? 0 : threads, std::memory_order_relaxed);
}

int gemm_thread_setting() noexcept {
    return g_gemm_threads.load(std::memory_order_relaxed);
}

int gemm_threads() noexcept {
#ifdef _OPENMP
    const int t = g_gemm_threads.load(std::memory_order_relaxed);
    return t == 0 ? omp_get_max_threads() : t;
#else
    return 1; // serial build: the kernels cannot run wider, whatever the setting
#endif
}

void gemm_reference(double alpha, const Matrix& a, const Matrix& b, double beta,
                    Matrix& c) {
    check_shapes(a, b, c);
    const std::size_t m = a.rows();
    const std::size_t n = b.cols();
    const std::size_t k = a.cols();
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < k; ++p) acc += a(i, p) * b(p, j);
            // BLAS semantics: beta == 0 means C is not read, so garbage
            // (even NaN) in the output matrix is overwritten, not propagated.
            c(i, j) = beta == 0.0 ? alpha * acc : alpha * acc + beta * c(i, j);
        }
    }
}

void gemm_blocked(double alpha, const Matrix& a, const Matrix& b, double beta,
                  Matrix& c) {
    check_shapes(a, b, c);
    const std::size_t m = a.rows();
    const std::size_t n = b.cols();
    const std::size_t k = a.cols();

    // beta pass first so K-blocks can accumulate with +=.
    if (beta == 0.0) {
        c.set_zero();
    } else if (beta != 1.0) {
        for (double& x : c.data()) x *= beta;
    }
    if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

    [[maybe_unused]] const int threads = std::max(1, gemm_threads());

#ifdef _OPENMP
    #pragma omp parallel num_threads(threads)
#endif
    {
        // Per-thread packed B panel (kBlockK x kBlockN, padded to kMicroN).
        std::vector<double> bpack(kBlockK * (kBlockN + kMicroN));

#ifdef _OPENMP
        #pragma omp for collapse(2) schedule(dynamic)
#endif
        for (std::size_t jb = 0; jb < n; jb += kBlockN) {
            for (std::size_t ib = 0; ib < m; ib += kBlockM) {
                const std::size_t nb = std::min(kBlockN, n - jb);
                const std::size_t mb = std::min(kBlockM, m - ib);
                for (std::size_t pb = 0; pb < k; pb += kBlockK) {
                    const std::size_t kb = std::min(kBlockK, k - pb);

                    // Pack alpha * B(pb:pb+kb, jb:jb+nb) into column strips of
                    // width kMicroN so the micro-kernel streams contiguously.
                    const std::size_t strips = (nb + kMicroN - 1) / kMicroN;
                    for (std::size_t s = 0; s < strips; ++s) {
                        const std::size_t j0 = s * kMicroN;
                        const std::size_t nw = std::min(kMicroN, nb - j0);
                        double* dst = bpack.data() + s * kBlockK * kMicroN;
                        for (std::size_t p = 0; p < kb; ++p) {
                            for (std::size_t j = 0; j < kMicroN; ++j) {
                                dst[p * kMicroN + j] =
                                    j < nw ? alpha * b(pb + p, jb + j0 + j) : 0.0;
                            }
                        }
                    }

                    // Sweep micro tiles of C.
                    for (std::size_t i0 = 0; i0 < mb; i0 += kMicroM) {
                        const std::size_t mr = std::min(kMicroM, mb - i0);
                        const double* a_tile = &a(ib + i0, pb);
                        for (std::size_t s = 0; s < strips; ++s) {
                            const std::size_t j0 = s * kMicroN;
                            const std::size_t nr = std::min(kMicroN, nb - j0);
                            const double* bp = bpack.data() + s * kBlockK * kMicroN;
                            double* c_tile = &c(ib + i0, jb + j0);
                            if (mr == kMicroM && nr == kMicroN) {
                                micro_kernel_4x4(kb, a_tile, a.cols(), bp, c_tile,
                                                 c.cols());
                            } else {
                                edge_kernel(mr, nr, kb, a_tile, a.cols(), bp,
                                            c_tile, c.cols());
                            }
                        }
                    }
                }
            }
        }
    }
}

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c) {
    check_shapes(a, b, c); // one error contract for every backend
    active_backend().gemm(alpha, a, b, beta, c);
}

Matrix multiply(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    gemm(1.0, a, b, 0.0, c);
    return c;
}

} // namespace relperf::linalg
