#pragma once
//! \file gemm.hpp
//! General matrix-matrix multiplication: C = alpha * A * B + beta * C.
//!
//! Two implementations:
//!  * `gemm_reference` — textbook triple loop; the correctness oracle.
//!  * `gemm`           — cache-blocked, B-packed, OpenMP-parallel kernel
//!                       with an unrolled 4x4 register micro-kernel.
//!
//! `set_gemm_threads` clamps the OpenMP team used by `gemm`; the
//! RealExecutor maps the paper's "edge device" to 1 thread and the
//! "accelerator" to the full machine (paper footnote 2).

#include "linalg/matrix.hpp"

namespace relperf::linalg {

/// Reference implementation (single-threaded). Oracle for tests.
void gemm_reference(double alpha, const Matrix& a, const Matrix& b, double beta,
                    Matrix& c);

/// Blocked + packed + OpenMP implementation.
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c);

/// Convenience: returns A * B.
[[nodiscard]] Matrix multiply(const Matrix& a, const Matrix& b);

/// Number of threads `gemm` may use; 0 = library default (max).
void set_gemm_threads(int threads) noexcept;
[[nodiscard]] int gemm_threads() noexcept;

/// FLOP count of a GEMM with these dimensions (2*m*n*k, plus m*n for beta).
[[nodiscard]] constexpr double gemm_flops(std::size_t m, std::size_t n,
                                          std::size_t k) noexcept {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
}

} // namespace relperf::linalg
