#pragma once
//! \file gemm.hpp
//! General matrix-matrix multiplication: C = alpha * A * B + beta * C.
//!
//! Three entry points:
//!  * `gemm_reference` — textbook triple loop; the correctness oracle and the
//!                       `reference` backend's kernel.
//!  * `gemm_blocked`   — cache-blocked, B-packed, OpenMP-parallel kernel with
//!                       an unrolled 4x4 register micro-kernel; the
//!                       `portable` backend's kernel.
//!  * `gemm`           — dispatches to the active backend (see backend.hpp);
//!                       this is what workloads call.
//!
//! `set_gemm_threads` clamps the OpenMP team used by the portable kernels;
//! the RealExecutor maps the paper's "edge device" to 1 thread and the
//! "accelerator" to the full machine (paper footnote 2). A vendor `blas`
//! backend manages its own threads (OPENBLAS_NUM_THREADS etc.); the clamp
//! does not apply to it.

#include "linalg/matrix.hpp"

namespace relperf::linalg {

/// Reference implementation (single-threaded). Oracle for tests.
void gemm_reference(double alpha, const Matrix& a, const Matrix& b, double beta,
                    Matrix& c);

/// Blocked + packed + OpenMP implementation (the `portable` backend kernel).
void gemm_blocked(double alpha, const Matrix& a, const Matrix& b, double beta,
                  Matrix& c);

/// Dispatches through the active backend. Throws InvalidArgument unless
/// a.cols() == b.rows(), c.rows() == a.rows() and c.cols() == b.cols();
/// 0-sized dimensions are legal and leave the (possibly empty) C = beta * C.
/// BLAS semantics: beta == 0 means C is never read, so C may hold garbage.
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c);

/// Convenience: returns A * B via the active backend.
[[nodiscard]] Matrix multiply(const Matrix& a, const Matrix& b);

/// Number of threads the portable kernels may use; 0 = library default (max).
/// Negative values are clamped to 0.
void set_gemm_threads(int threads) noexcept;

/// The raw value last passed to set_gemm_threads (0 = library default).
/// Use this — not gemm_threads() — to save and restore the setting.
[[nodiscard]] int gemm_thread_setting() noexcept;

/// The effective team size the portable kernels will run with: the setting,
/// resolved against the machine. Serial (no-OpenMP) builds always report 1 —
/// the kernels cannot run wider regardless of the setting.
[[nodiscard]] int gemm_threads() noexcept;

/// FLOP count of a GEMM with these dimensions (2*m*n*k, plus m*n for beta).
[[nodiscard]] constexpr double gemm_flops(std::size_t m, std::size_t n,
                                          std::size_t k) noexcept {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
}

} // namespace relperf::linalg
