#include "linalg/matrix.hpp"

#include "support/error.hpp"

#include <cmath>

namespace relperf::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill_value)
    : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

double& Matrix::at(std::size_t r, std::size_t c) {
    RELPERF_REQUIRE(r < rows_ && c < cols_, "Matrix::at: index out of range");
    return (*this)(r, c);
}

const double& Matrix::at(std::size_t r, std::size_t c) const {
    RELPERF_REQUIRE(r < rows_ && c < cols_, "Matrix::at: index out of range");
    return (*this)(r, c);
}

std::span<double> Matrix::row(std::size_t r) {
    RELPERF_REQUIRE(r < rows_, "Matrix::row: index out of range");
    return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
    RELPERF_REQUIRE(r < rows_, "Matrix::row: index out of range");
    return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(double value) noexcept {
    for (double& x : data_) x = value;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, stats::Rng& rng) {
    Matrix m(rows, cols);
    for (double& x : m.data_) x = rng.uniform(-1.0, 1.0);
    return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, stats::Rng& rng) {
    Matrix m(rows, cols);
    for (double& x : m.data_) x = rng.normal();
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    constexpr std::size_t kBlock = 32; // cache-blocked transpose
    for (std::size_t rb = 0; rb < rows_; rb += kBlock) {
        for (std::size_t cb = 0; cb < cols_; cb += kBlock) {
            const std::size_t r_end = std::min(rb + kBlock, rows_);
            const std::size_t c_end = std::min(cb + kBlock, cols_);
            for (std::size_t r = rb; r < r_end; ++r) {
                for (std::size_t c = cb; c < c_end; ++c) {
                    t(c, r) = (*this)(r, c);
                }
            }
        }
    }
    return t;
}

void Matrix::add_scaled_identity(double alpha) {
    RELPERF_REQUIRE(square(), "add_scaled_identity: matrix must be square");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += alpha;
}

double Matrix::frobenius_norm() const noexcept {
    // Scaled accumulation to avoid overflow on large magnitudes.
    double scale = 0.0;
    double ssq = 1.0;
    for (const double x : data_) {
        if (x == 0.0) continue;
        const double ax = std::fabs(x);
        if (scale < ax) {
            ssq = 1.0 + ssq * (scale / ax) * (scale / ax);
            scale = ax;
        } else {
            ssq += (ax / scale) * (ax / scale);
        }
    }
    return scale * std::sqrt(ssq);
}

double Matrix::max_abs_diff(const Matrix& other) const {
    RELPERF_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                    "max_abs_diff: shape mismatch");
    double worst = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
    }
    return worst;
}

bool Matrix::operator==(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

Matrix subtract(const Matrix& a, const Matrix& b) {
    RELPERF_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                    "subtract: shape mismatch");
    Matrix c(a.rows(), a.cols());
    const std::span<const double> pa = a.data();
    const std::span<const double> pb = b.data();
    const std::span<double> pc = c.data();
    for (std::size_t i = 0; i < pc.size(); ++i) pc[i] = pa[i] - pb[i];
    return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
    RELPERF_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                    "add: shape mismatch");
    Matrix c(a.rows(), a.cols());
    const std::span<const double> pa = a.data();
    const std::span<const double> pb = b.data();
    const std::span<double> pc = c.data();
    for (std::size_t i = 0; i < pc.size(); ++i) pc[i] = pa[i] + pb[i];
    return c;
}

} // namespace relperf::linalg
