#pragma once
//! \file cholesky.hpp
//! Cholesky factorization and triangular solves — the solver path for the
//! paper's Regularized Least Squares task: (AᵀA + λI) Z = AᵀB with an SPD
//! left-hand side.
//!
//! `cholesky_factor` dispatches through the active backend (see backend.hpp);
//! `cholesky_factor_unblocked` is the portable kernel and
//! `cholesky_factor_reference` the textbook oracle. Every backend produces
//! the unique lower factor with positive diagonal and zeroes the strict
//! upper triangle, and throws InvalidArgument on a non-square or
//! not-positive-definite input.

#include "linalg/matrix.hpp"

namespace relperf::linalg {

/// Factors SPD `a` in place into its lower Cholesky factor L (upper triangle
/// is zeroed) via the active backend. Throws InvalidArgument if `a` is not
/// square or not positive definite (non-positive pivot).
void cholesky_factor(Matrix& a);

/// Textbook Cholesky–Banachiewicz row-by-row factorization. Oracle for tests.
void cholesky_factor_reference(Matrix& a);

/// Column-oriented factorization with a SIMD inner update (the `portable`
/// backend kernel).
void cholesky_factor_unblocked(Matrix& a);

/// Solves L * X = B in place (B overwritten by X); L lower-triangular.
void solve_lower(const Matrix& l, Matrix& b);

/// Solves Lᵀ * X = B in place; L lower-triangular (accessed transposed).
void solve_lower_transposed(const Matrix& l, Matrix& b);

/// One-shot SPD solve: returns X with spd * X = rhs, via Cholesky.
/// `spd` is copied; use the in-place pieces above to avoid the copy.
[[nodiscard]] Matrix cholesky_solve(const Matrix& spd, const Matrix& rhs);

/// FLOPs of an n x n Cholesky factorization: n^3 / 3.
[[nodiscard]] constexpr double cholesky_flops(std::size_t n) noexcept {
    const double dn = static_cast<double>(n);
    return dn * dn * dn / 3.0;
}

/// FLOPs of a triangular solve with an n x n factor and nrhs right-hand
/// sides: n^2 * nrhs.
[[nodiscard]] constexpr double trsm_flops(std::size_t n, std::size_t nrhs) noexcept {
    return static_cast<double>(n) * static_cast<double>(n) *
           static_cast<double>(nrhs);
}

} // namespace relperf::linalg
