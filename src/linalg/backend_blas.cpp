//! The `blas` backend: vendor dgemm/dsyrk (BLAS) and dpotrf (LAPACK) through
//! the Fortran ABI, so `find_package(BLAS)`/`find_package(LAPACK)` libraries
//! work without any vendor header. Compiled only when the build defines
//! RELPERF_HAVE_BLAS (a found vendor BLAS, or the bundled testing shim in
//! blas_shim.cpp).
//!
//! Layout bridging: relperf matrices are row-major, the Fortran ABI is
//! column-major. No copies are needed —
//!  * GEMM uses C_rm = A·B  ⇔  C'_cm = B'·A' with X' the column-major view
//!    (i.e. the transpose) of row-major X, so the operands are swapped.
//!  * SYRK with the column-major view A' = Aᵀ (n x m) computes
//!    A'·A'ᵀ = AᵀA directly.
//!  * DPOTRF on the 'U' (column-major upper) triangle of a symmetric input
//!    writes exactly the row-major lower factor L.
//!
//! LP64 interface: dimensions pass as 32-bit int (the default ABI of
//! OpenBLAS/Netlib/MKL-lp64 packages); larger dimensions are rejected.

#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <climits>

extern "C" {
void dgemm_(const char* transa, const char* transb, const int* m, const int* n,
            const int* k, const double* alpha, const double* a, const int* lda,
            const double* b, const int* ldb, const double* beta, double* c,
            const int* ldc);
void dsyrk_(const char* uplo, const char* trans, const int* n, const int* k,
            const double* alpha, const double* a, const int* lda,
            const double* beta, double* c, const int* ldc);
void dpotrf_(const char* uplo, const int* n, double* a, const int* lda,
             int* info);
}

namespace relperf::linalg {

namespace {

int blas_dim(std::size_t value, const char* what) {
    RELPERF_REQUIRE(value <= static_cast<std::size_t>(INT_MAX),
                    std::string("blas backend: ") + what +
                        " exceeds the LP64 BLAS interface limit");
    return static_cast<int>(value);
}

void blas_gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
               Matrix& c) {
    RELPERF_REQUIRE(a.cols() == b.rows(), "gemm: inner dimensions differ");
    RELPERF_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
                    "gemm: output shape mismatch");
    const std::size_t m = a.rows();
    const std::size_t n = b.cols();
    const std::size_t k = a.cols();
    if (m == 0 || n == 0) return;
    if (k == 0 || alpha == 0.0) {
        // Quick return mirroring the portable kernel: C = beta * C without
        // touching the (possibly empty) operand pointers.
        if (beta == 0.0) {
            c.set_zero();
        } else if (beta != 1.0) {
            for (double& x : c.data()) x *= beta;
        }
        return;
    }

    // Column-major view: C' (n x m) = B' (n x k) * A' (k x m).
    const int mm = blas_dim(n, "gemm n");
    const int nn = blas_dim(m, "gemm m");
    const int kk = blas_dim(k, "gemm k");
    dgemm_("N", "N", &mm, &nn, &kk, &alpha, b.data().data(), &mm,
           a.data().data(), &kk, &beta, c.data().data(), &mm);
}

void blas_syrk(const Matrix& a, Matrix& c) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (c.rows() != n || c.cols() != n) c = Matrix(n, n);
    else c.set_zero();
    if (n == 0) return;
    if (m == 0) return; // C = AᵀA over zero rows is the zero matrix

    // Column-major view A' = Aᵀ is n x m: A'·A'ᵀ = AᵀA. Fill the
    // column-major 'U' triangle (= row-major lower) and mirror, matching the
    // portable kernel's fill order.
    const int nn = blas_dim(n, "syrk n");
    const int kk = blas_dim(m, "syrk m");
    const double one = 1.0;
    const double zero = 0.0;
    dsyrk_("U", "N", &nn, &kk, &one, a.data().data(), &nn, &zero,
           c.data().data(), &nn);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) c(i, j) = c(j, i);
    }
}

void blas_cholesky(Matrix& a) {
    RELPERF_REQUIRE(a.square(), "cholesky_factor: matrix must be square");
    const std::size_t n = a.rows();
    if (n == 0) return;

    // DPOTRF on the column-major upper triangle of the symmetric input
    // writes U with A = UᵀU; the same memory read row-major is the lower
    // factor L = Uᵀ with A = LLᵀ (unique for a positive diagonal).
    const int nn = blas_dim(n, "cholesky n");
    int info = 0;
    dpotrf_("U", &nn, a.data().data(), &nn, &info);
    if (info > 0) {
        throw InvalidArgument(str::format(
            "cholesky_factor: leading minor %d is not positive definite "
            "(matrix not positive definite)",
            info));
    }
    RELPERF_ASSERT(info == 0, "cholesky_factor: dpotrf reported an invalid "
                              "argument — relperf/BLAS interface bug");
    // dpotrf leaves the other triangle untouched; zero the row-major strict
    // upper part for a clean factor, like every other backend.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
    }
}

} // namespace

namespace detail {

Backend make_blas_backend() {
    return Backend{kBlasBackend,
#ifdef RELPERF_BLAS_SHIM
                   "bundled Fortran-ABI shim (dgemm/dsyrk/dpotrf) — testing "
                   "stand-in for a vendor BLAS",
#else
                   "vendor BLAS/LAPACK (dgemm/dsyrk/dpotrf, Fortran ABI)",
#endif
                   &blas_gemm, &blas_syrk, &blas_cholesky};
}

} // namespace detail

} // namespace relperf::linalg
