#pragma once
//! \file lu.hpp
//! LU factorization with partial pivoting — the general-purpose solver,
//! used as an independent oracle for the Cholesky path in tests and as a
//! fallback when a regularized system is near-singular.

#include "linalg/matrix.hpp"

#include <vector>

namespace relperf::linalg {

/// Factorization result: `lu` holds L (unit lower, implicit diagonal) and U,
/// `perm` is the row permutation (perm[i] = original row in position i).
struct LuFactors {
    Matrix lu;
    std::vector<std::size_t> perm;
};

/// Factors `a` (copied) with partial pivoting. Throws InvalidArgument when a
/// pivot column is exactly singular.
[[nodiscard]] LuFactors lu_factor(const Matrix& a);

/// Solves A * X = rhs given the factorization.
[[nodiscard]] Matrix lu_solve(const LuFactors& f, const Matrix& rhs);

/// One-shot general solve.
[[nodiscard]] Matrix solve(const Matrix& a, const Matrix& rhs);

/// FLOPs of an n x n LU factorization: 2 n^3 / 3.
[[nodiscard]] constexpr double lu_flops(std::size_t n) noexcept {
    const double dn = static_cast<double>(n);
    return 2.0 * dn * dn * dn / 3.0;
}

} // namespace relperf::linalg
