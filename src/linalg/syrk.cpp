#include "linalg/syrk.hpp"

#include "linalg/backend.hpp"
#include "linalg/gemm.hpp"
#include "support/error.hpp"

#include <algorithm>

namespace relperf::linalg {

void gram_reference(const Matrix& a, Matrix& c) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (c.rows() != n || c.cols() != n) c = Matrix(n, n);
    else c.set_zero();
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < m; ++p) acc += a(p, i) * a(p, j);
            c(i, j) = acc;
            c(j, i) = acc;
        }
    }
}

void gram_blocked(const Matrix& a, Matrix& c) {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (c.rows() != n || c.cols() != n) c = Matrix(n, n);
    else c.set_zero();

    constexpr std::size_t kBlock = 64;
    [[maybe_unused]] const int threads = std::max(1, gemm_threads());

    // Lower triangle: c(i, j) = sum_p a(p, i) * a(p, j), j <= i.
#ifdef _OPENMP
    #pragma omp parallel for schedule(dynamic) num_threads(threads)
#endif
    for (std::size_t ib = 0; ib < n; ib += kBlock) {
        const std::size_t i_end = std::min(ib + kBlock, n);
        for (std::size_t jb = 0; jb <= ib; jb += kBlock) {
            const std::size_t j_end = std::min(jb + kBlock, n);
            for (std::size_t p = 0; p < m; ++p) {
                const double* row = &a(p, 0);
                for (std::size_t i = ib; i < i_end; ++i) {
                    const double aip = row[i];
                    const std::size_t j_hi = std::min(j_end, i + 1);
                    for (std::size_t j = jb; j < j_hi; ++j) {
                        c(i, j) += aip * row[j];
                    }
                }
            }
        }
    }

    // Mirror to the upper triangle.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) c(i, j) = c(j, i);
    }
}

void gram(const Matrix& a, Matrix& c) { active_backend().syrk(a, c); }

Matrix gram(const Matrix& a) {
    Matrix c;
    gram(a, c);
    return c;
}

} // namespace relperf::linalg
