#include "linalg/blas1.hpp"

#include "support/error.hpp"

#include <cmath>

namespace relperf::linalg {

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
    RELPERF_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
    #pragma omp simd
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(std::span<const double> x, std::span<const double> y) {
    RELPERF_REQUIRE(x.size() == y.size(), "dot: size mismatch");
    double acc = 0.0;
    #pragma omp simd reduction(+ : acc)
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
    return acc;
}

void scal(double alpha, std::span<double> x) noexcept {
    #pragma omp simd
    for (std::size_t i = 0; i < x.size(); ++i) x[i] *= alpha;
}

double nrm2(std::span<const double> x) noexcept {
    double scale = 0.0;
    double ssq = 1.0;
    for (const double v : x) {
        if (v == 0.0) continue;
        const double av = std::fabs(v);
        if (scale < av) {
            ssq = 1.0 + ssq * (scale / av) * (scale / av);
            scale = av;
        } else {
            ssq += (av / scale) * (av / scale);
        }
    }
    return scale * std::sqrt(ssq);
}

std::size_t iamax(std::span<const double> x) {
    RELPERF_REQUIRE(!x.empty(), "iamax: empty vector");
    std::size_t best = 0;
    double best_abs = std::fabs(x[0]);
    for (std::size_t i = 1; i < x.size(); ++i) {
        const double a = std::fabs(x[i]);
        if (a > best_abs) {
            best_abs = a;
            best = i;
        }
    }
    return best;
}

} // namespace relperf::linalg
