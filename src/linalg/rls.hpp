#pragma once
//! \file rls.hpp
//! Regularized Least Squares (Tikhonov) — the mathematical problem inside the
//! paper's MathTask (Procedure 6, line 4):
//!
//!     Z = (AᵀA + penalty · I)⁻¹ AᵀB
//!
//! solved via Gram matrix + Cholesky. Also provides the residual penalty
//! update ‖AZ − B‖₂ (line 5) and the FLOP model used by the simulator and
//! the energy/FLOPs decision criteria of Section IV.

#include "linalg/matrix.hpp"

namespace relperf::linalg {

/// Solves the RLS system for square-or-tall A (rows >= cols).
/// `penalty` must make AᵀA + penalty·I positive definite (penalty >= 0 works
/// for full-rank A; a tiny floor is applied internally to guard rank
/// deficiency of random matrices).
[[nodiscard]] Matrix rls_solve(const Matrix& a, const Matrix& b, double penalty);

/// Residual norm ‖A Z − B‖_F (the paper's next-iteration penalty).
[[nodiscard]] double rls_residual(const Matrix& a, const Matrix& b, const Matrix& z);

/// FLOPs of one rls_solve + residual evaluation with n x n A and B
/// (Procedure 6 uses square matrices of order `size`):
///   Gram n²(n+1) + add n + Cholesky n³/3 + AᵀB 2n³ + 2 triangular solves
///   2n³ + residual GEMM 2n³ + subtraction n² + norm 2n².
[[nodiscard]] double rls_flops(std::size_t n) noexcept;

} // namespace relperf::linalg
