#include "linalg/cholesky.hpp"

#include "linalg/backend.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <cmath>

namespace relperf::linalg {

void cholesky_factor(Matrix& a) {
    RELPERF_REQUIRE(a.square(), "cholesky_factor: matrix must be square");
    active_backend().cholesky(a);
}

void cholesky_factor_reference(Matrix& a) {
    RELPERF_REQUIRE(a.square(), "cholesky_factor: matrix must be square");
    const std::size_t n = a.rows();
    // Cholesky–Banachiewicz: build L row by row.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t p = 0; p < j; ++p) acc -= a(i, p) * a(j, p);
            if (i == j) {
                RELPERF_REQUIRE(
                    acc > 0.0,
                    relperf::str::format(
                        "cholesky_factor: non-positive pivot %.3e at %zu "
                        "(matrix not positive definite)",
                        acc, j));
                a(i, j) = std::sqrt(acc);
            } else {
                a(i, j) = acc / a(j, j);
            }
        }
        for (std::size_t c = i + 1; c < n; ++c) a(i, c) = 0.0;
    }
}

void cholesky_factor_unblocked(Matrix& a) {
    RELPERF_REQUIRE(a.square(), "cholesky_factor: matrix must be square");
    const std::size_t n = a.rows();
    for (std::size_t j = 0; j < n; ++j) {
        // Diagonal element.
        double diag = a(j, j);
        for (std::size_t p = 0; p < j; ++p) diag -= a(j, p) * a(j, p);
        RELPERF_REQUIRE(diag > 0.0,
                        relperf::str::format(
                            "cholesky_factor: non-positive pivot %.3e at %zu "
                            "(matrix not positive definite)",
                            diag, j));
        const double ljj = std::sqrt(diag);
        a(j, j) = ljj;

        // Column below the diagonal.
        const double inv = 1.0 / ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a(i, j);
            #pragma omp simd reduction(- : acc)
            for (std::size_t p = 0; p < j; ++p) acc -= a(i, p) * a(j, p);
            a(i, j) = acc * inv;
        }
        // Zero the strictly upper part of row j for a clean factor.
        for (std::size_t c = j + 1; c < n; ++c) a(j, c) = 0.0;
    }
}

void solve_lower(const Matrix& l, Matrix& b) {
    RELPERF_REQUIRE(l.square(), "solve_lower: factor must be square");
    RELPERF_REQUIRE(l.rows() == b.rows(), "solve_lower: shape mismatch");
    const std::size_t n = l.rows();
    const std::size_t nrhs = b.cols();
    for (std::size_t i = 0; i < n; ++i) {
        const double inv = 1.0 / l(i, i);
        for (std::size_t j = 0; j < nrhs; ++j) {
            double acc = b(i, j);
            for (std::size_t p = 0; p < i; ++p) acc -= l(i, p) * b(p, j);
            b(i, j) = acc * inv;
        }
    }
}

void solve_lower_transposed(const Matrix& l, Matrix& b) {
    RELPERF_REQUIRE(l.square(), "solve_lower_transposed: factor must be square");
    RELPERF_REQUIRE(l.rows() == b.rows(), "solve_lower_transposed: shape mismatch");
    const std::size_t n = l.rows();
    const std::size_t nrhs = b.cols();
    for (std::size_t ii = n; ii-- > 0;) {
        const double inv = 1.0 / l(ii, ii);
        for (std::size_t j = 0; j < nrhs; ++j) {
            double acc = b(ii, j);
            for (std::size_t p = ii + 1; p < n; ++p) acc -= l(p, ii) * b(p, j);
            b(ii, j) = acc * inv;
        }
    }
}

Matrix cholesky_solve(const Matrix& spd, const Matrix& rhs) {
    RELPERF_REQUIRE(spd.rows() == rhs.rows(), "cholesky_solve: shape mismatch");
    Matrix l = spd;
    cholesky_factor(l);
    Matrix x = rhs;
    solve_lower(l, x);
    solve_lower_transposed(l, x);
    return x;
}

} // namespace relperf::linalg
