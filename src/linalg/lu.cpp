#include "linalg/lu.hpp"

#include "support/error.hpp"

#include <cmath>
#include <numeric>
#include <utility>

namespace relperf::linalg {

LuFactors lu_factor(const Matrix& a) {
    RELPERF_REQUIRE(a.square(), "lu_factor: matrix must be square");
    const std::size_t n = a.rows();
    LuFactors f{a, std::vector<std::size_t>(n)};
    std::iota(f.perm.begin(), f.perm.end(), std::size_t{0});
    Matrix& m = f.lu;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivot: largest |m(i, k)| for i >= k.
        std::size_t pivot = k;
        double best = std::fabs(m(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double cand = std::fabs(m(i, k));
            if (cand > best) {
                best = cand;
                pivot = i;
            }
        }
        RELPERF_REQUIRE(best > 0.0, "lu_factor: matrix is singular");
        if (pivot != k) {
            for (std::size_t c = 0; c < n; ++c) std::swap(m(k, c), m(pivot, c));
            std::swap(f.perm[k], f.perm[pivot]);
        }

        const double inv = 1.0 / m(k, k);
        for (std::size_t i = k + 1; i < n; ++i) {
            const double lik = m(i, k) * inv;
            m(i, k) = lik;
            #pragma omp simd
            for (std::size_t c = k + 1; c < n; ++c) m(i, c) -= lik * m(k, c);
        }
    }
    return f;
}

Matrix lu_solve(const LuFactors& f, const Matrix& rhs) {
    const std::size_t n = f.lu.rows();
    RELPERF_REQUIRE(rhs.rows() == n, "lu_solve: shape mismatch");
    const std::size_t nrhs = rhs.cols();

    // Apply the permutation.
    Matrix x(n, nrhs);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < nrhs; ++j) x(i, j) = rhs(f.perm[i], j);
    }

    // Forward: L y = P rhs (unit diagonal).
    for (std::size_t i = 1; i < n; ++i) {
        for (std::size_t j = 0; j < nrhs; ++j) {
            double acc = x(i, j);
            for (std::size_t p = 0; p < i; ++p) acc -= f.lu(i, p) * x(p, j);
            x(i, j) = acc;
        }
    }
    // Backward: U x = y.
    for (std::size_t ii = n; ii-- > 0;) {
        const double inv = 1.0 / f.lu(ii, ii);
        for (std::size_t j = 0; j < nrhs; ++j) {
            double acc = x(ii, j);
            for (std::size_t p = ii + 1; p < n; ++p) acc -= f.lu(ii, p) * x(p, j);
            x(ii, j) = acc * inv;
        }
    }
    return x;
}

Matrix solve(const Matrix& a, const Matrix& rhs) {
    return lu_solve(lu_factor(a), rhs);
}

} // namespace relperf::linalg
