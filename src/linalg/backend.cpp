#include "linalg/backend.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/gemm.hpp"
#include "linalg/syrk.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <atomic>
#include <deque>
#include <mutex>

namespace relperf::linalg {

#ifdef RELPERF_HAVE_BLAS
namespace detail {
Backend make_blas_backend(); // defined in backend_blas.cpp
} // namespace detail
#endif

namespace {

/// Registry storage. A deque keeps references stable across registrations,
/// so `backend()` results remain valid for the process lifetime.
struct Registry {
    std::mutex mutex;
    std::deque<Backend> backends;

    Registry() {
        backends.push_back(Backend{
            kReferenceBackend,
            "textbook loops — the parity oracle, always available",
            &gemm_reference, &gram_reference, &cholesky_factor_reference});
        backends.push_back(Backend{
            kPortableBackend,
            "blocked/packed kernels (OpenMP when built in) — the default",
            &gemm_blocked, &gram_blocked, &cholesky_factor_unblocked});
#ifdef RELPERF_HAVE_BLAS
        backends.push_back(detail::make_blas_backend());
#endif
    }

    const Backend* find(const std::string& name) {
        for (const Backend& b : backends) {
            if (b.name == name) return &b;
        }
        return nullptr;
    }
};

Registry& registry() {
    static Registry instance;
    return instance;
}

std::atomic<const Backend*> g_default{nullptr};
thread_local const Backend* t_override = nullptr;

} // namespace

void register_backend(Backend backend) {
    RELPERF_REQUIRE(!backend.name.empty(),
                    "register_backend: backend name must not be empty");
    RELPERF_REQUIRE(backend.gemm != nullptr && backend.syrk != nullptr &&
                        backend.cholesky != nullptr,
                    "register_backend: every kernel pointer must be non-null");
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    RELPERF_REQUIRE(reg.find(backend.name) == nullptr,
                    "register_backend: backend '" + backend.name +
                        "' is already registered");
    reg.backends.push_back(std::move(backend));
}

const Backend& backend(const std::string& name) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    if (const Backend* found = reg.find(name)) return *found;
    std::vector<std::string> names;
    names.reserve(reg.backends.size());
    for (const Backend& b : reg.backends) names.push_back(b.name);
    throw InvalidArgument("unknown linalg backend '" + name +
                          "' (registered: " + str::join(names, ", ") +
                          ") — a 'blas' backend additionally requires "
                          "building with -DRELPERF_ENABLE_BLAS=ON");
}

bool has_backend(const std::string& name) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.find(name) != nullptr;
}

std::vector<std::string> backend_names() {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.backends.size());
    for (const Backend& b : reg.backends) names.push_back(b.name);
    return names;
}

const Backend& default_backend() {
    const Backend* current = g_default.load(std::memory_order_acquire);
    if (current == nullptr) {
        // First use: the portable kernels, exactly the pre-backend behavior.
        current = &backend(kPortableBackend);
        const Backend* expected = nullptr;
        g_default.compare_exchange_strong(expected, current,
                                          std::memory_order_acq_rel);
        current = g_default.load(std::memory_order_acquire);
    }
    return *current;
}

void set_default_backend(const std::string& name) {
    g_default.store(&backend(name), std::memory_order_release);
}

const Backend& active_backend() {
    return t_override != nullptr ? *t_override : default_backend();
}

ScopedBackend::ScopedBackend(const std::string& name)
    : ScopedBackend(backend(name)) {}

ScopedBackend::ScopedBackend(const Backend& backend) : saved_(t_override) {
    t_override = &backend;
}

ScopedBackend::~ScopedBackend() { t_override = saved_; }

} // namespace relperf::linalg
