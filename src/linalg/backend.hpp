#pragma once
//! \file backend.hpp
//! Runtime-selectable kernel backends — the paper's "generic vs
//! vendor-optimized implementations of the same math" axis.
//!
//! A Backend bundles the level-3 kernels the workloads execute (GEMM, the
//! SYRK-based Gram matrix, Cholesky). Three backends exist:
//!
//!  * `reference` — the textbook loops; always registered, always the oracle
//!                  the parity suite compares every other backend against.
//!  * `portable`  — the blocked/packed/OpenMP kernels; always registered and
//!                  the process default, so a build without a vendor BLAS
//!                  behaves exactly as before this layer existed.
//!  * `blas`      — vendor `dgemm`/`dsyrk`/`dpotrf` via the Fortran ABI;
//!                  registered only when the build found a BLAS/LAPACK
//!                  (`-DRELPERF_ENABLE_BLAS=ON`) or uses the bundled testing
//!                  shim (`-DRELPERF_BLAS_SHIM=ON`).
//!
//! Dispatch is ambient: `linalg::gemm` / `linalg::gram` /
//! `linalg::cholesky_factor` route through the *active* backend, so call
//! sites do not change. The active backend is the per-thread override when a
//! ScopedBackend is live on this thread, else the process default. Shape and
//! SPD preconditions are enforced by the dispatching wrappers, giving every
//! backend an identical error contract.

#include "linalg/matrix.hpp"

#include <string>
#include <vector>

namespace relperf::linalg {

/// One kernel implementation set. All three pointers must be non-null; every
/// kernel must satisfy the contracts documented on the dispatching wrappers
/// (gemm / gram / cholesky_factor) — the parity suite in
/// tests/linalg/backend_parity_test.cpp checks each registered backend
/// against the reference oracles automatically.
struct Backend {
    std::string name;        ///< Registry key, e.g. "portable".
    std::string description; ///< One line for --list-backends probes.
    /// C = alpha * A * B + beta * C (shapes already validated).
    void (*gemm)(double alpha, const Matrix& a, const Matrix& b, double beta,
                 Matrix& c) = nullptr;
    /// C = AᵀA, full mirrored storage; C is resized/overwritten.
    void (*syrk)(const Matrix& a, Matrix& c) = nullptr;
    /// In-place lower Cholesky factor; zeroes the strict upper triangle;
    /// throws InvalidArgument when `a` is not positive definite.
    void (*cholesky)(Matrix& a) = nullptr;
};

/// Built-in backend names.
inline constexpr const char* kReferenceBackend = "reference";
inline constexpr const char* kPortableBackend = "portable";
inline constexpr const char* kBlasBackend = "blas";

/// Registers an additional backend. Throws InvalidArgument on an empty or
/// duplicate name or a null kernel pointer. Thread-safe.
void register_backend(Backend backend);

/// Looks a backend up by name; throws InvalidArgument listing the registered
/// names when `name` is unknown. Returned reference stays valid for the
/// process lifetime.
[[nodiscard]] const Backend& backend(const std::string& name);

[[nodiscard]] bool has_backend(const std::string& name);

/// Registered names, in registration order ("reference", "portable", then
/// "blas" when built in, then user registrations).
[[nodiscard]] std::vector<std::string> backend_names();

/// Process-default backend ("portable" until set_default_backend is called).
[[nodiscard]] const Backend& default_backend();
void set_default_backend(const std::string& name);

/// The backend ambient dispatch uses on this thread: the innermost live
/// ScopedBackend override, else the process default.
[[nodiscard]] const Backend& active_backend();

/// RAII per-thread backend override. Nestable; restores the previous
/// override on destruction. The override is thread-local on purpose: shard
/// worker threads select their campaign's backend without racing each other.
class ScopedBackend {
public:
    explicit ScopedBackend(const std::string& name);
    explicit ScopedBackend(const Backend& backend);
    ~ScopedBackend();

    ScopedBackend(const ScopedBackend&) = delete;
    ScopedBackend& operator=(const ScopedBackend&) = delete;

private:
    const Backend* saved_;
};

} // namespace relperf::linalg
