#pragma once
//! \file bootstrap.hpp
//! Bootstrap resampling — the statistical engine behind the paper's
//! three-way comparison (Sec. III; methodology of ref. [15]).
//!
//! The core operation is: draw a with-replacement resample of a measurement
//! sample and evaluate a statistic on it; repeating this yields the bootstrap
//! distribution of the statistic, from which confidence intervals and the
//! pair-wise win/tie/loss scores of the comparator are derived.

#include "stats/rng.hpp"

#include <functional>
#include <span>
#include <vector>

namespace relperf::stats {

/// Statistic evaluated on a (re)sample.
using Statistic = std::function<double(std::span<const double>)>;

/// Draws one bootstrap resample (size `m`, with replacement) from `sample`
/// into `out` (resized as needed).
void resample(std::span<const double> sample, std::size_t m, Rng& rng,
              std::vector<double>& out);

/// Convenience overload returning a fresh vector.
[[nodiscard]] std::vector<double> resample(std::span<const double> sample,
                                           std::size_t m, Rng& rng);

/// Bootstrap distribution of `stat` over `rounds` resamples of size
/// `sample.size()`.
[[nodiscard]] std::vector<double> bootstrap_distribution(std::span<const double> sample,
                                                         const Statistic& stat,
                                                         std::size_t rounds, Rng& rng);

/// Two-sided percentile bootstrap confidence interval.
struct Interval {
    double lo = 0.0;
    double hi = 0.0;
    /// True if the interval excludes `value`.
    [[nodiscard]] bool excludes(double value) const noexcept {
        return value < lo || value > hi;
    }
};

/// Percentile CI of `stat` at confidence `1 - alpha` (e.g. alpha = 0.05).
[[nodiscard]] Interval bootstrap_ci(std::span<const double> sample, const Statistic& stat,
                                    std::size_t rounds, double alpha, Rng& rng);

} // namespace relperf::stats
