#pragma once
//! \file ranking.hpp
//! Rank-correlation statistics used to evaluate predicted orderings against
//! measured ones (the paper's future-work direction, Sec. V: performance
//! models that predict relative scores without executing all algorithms).

#include <span>
#include <vector>

namespace relperf::stats {

/// Kendall's tau-b in [-1, 1] between two paired score vectors, with tie
/// correction in both variables. 1 = identical ordering, -1 = reversed,
/// 0 = unrelated. Throws InvalidArgument on size mismatch / size < 2.
[[nodiscard]] double kendall_tau_b(std::span<const double> a,
                                   std::span<const double> b);

/// Spearman's rho: Pearson correlation of midranks.
[[nodiscard]] double spearman_rho(std::span<const double> a,
                                  std::span<const double> b);

/// Fraction of discordant pairs (strictly ordered in `a` but oppositely
/// ordered in `b`), over strictly-ordered-in-`a` pairs. 0 = all pairwise
/// decisions agree.
[[nodiscard]] double pairwise_disagreement(std::span<const double> a,
                                           std::span<const double> b);

/// Midranks of a vector (average rank for ties), 1-based.
[[nodiscard]] std::vector<double> midrank(std::span<const double> values);

/// Rand index in [0, 1] between two clusterings given as label vectors:
/// fraction of element pairs on which the clusterings agree (same-cluster in
/// both or split in both). 1 = identical partitions.
[[nodiscard]] double rand_index(std::span<const int> labels_a,
                                std::span<const int> labels_b);

/// Adjusted Rand index: Rand index corrected for chance; 1 = identical,
/// ~0 = random relabeling, can be negative for adversarial disagreement.
[[nodiscard]] double adjusted_rand_index(std::span<const int> labels_a,
                                         std::span<const int> labels_b);

} // namespace relperf::stats
