#pragma once
//! \file rng.hpp
//! Deterministic pseudo-random number generation for every stochastic
//! component of relperf (noise models, bootstrap resampling, shuffles).
//!
//! Two generators are implemented from scratch:
//!  * SplitMix64 — seed expander / stream splitter,
//!  * Xoshiro256++ — the main generator (Blackman & Vigna 2019).
//!
//! Determinism contract: every relperf API that consumes randomness takes an
//! explicit `Rng&` or a `seed`; two runs with equal seeds produce identical
//! results bit-for-bit on the same platform.

#include <array>
#include <cstdint>
#include <vector>

namespace relperf::stats {

/// SplitMix64: tiny, passes BigCrush on 64-bit outputs; used to expand one
/// 64-bit seed into the 256-bit xoshiro state and to derive child seeds.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Xoshiro256++ — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256pp {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    result_type operator()() noexcept;

    /// Equivalent to 2^128 calls of operator(); used to derive independent
    /// parallel streams from one seed.
    void jump() noexcept;

private:
    std::array<std::uint64_t, 4> s_;
};

/// High-level RNG facade with the distributions relperf needs. All sampling
/// is implemented inline over Xoshiro256++ (no libstdc++ distribution
/// objects, whose algorithms are unspecified and not reproducible across
/// standard libraries).
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0xC0FFEEULL) noexcept : gen_(seed), seed_(seed) {}

    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Derives an independent child generator (seed mixing via SplitMix64).
    [[nodiscard]] Rng child(std::uint64_t stream) const noexcept;

    /// Raw 64 uniform bits.
    std::uint64_t bits() noexcept { return gen_(); }

    /// Uniform double in [0, 1) with 53-bit resolution.
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n) without modulo bias (Lemire rejection).
    std::uint64_t uniform_index(std::uint64_t n) noexcept;

    /// Standard normal via Box–Muller (cached second variate).
    double normal() noexcept;

    /// Normal with given mean / stddev.
    double normal(double mean, double stddev) noexcept;

    /// Lognormal: exp(N(mu_log, sigma_log)).
    double lognormal(double mu_log, double sigma_log) noexcept;

    /// Exponential with rate lambda (> 0).
    double exponential(double lambda) noexcept;

    /// Pareto (Lomax-style tail), scale x_m > 0, shape alpha > 0.
    double pareto(double x_m, double alpha) noexcept;

    /// Bernoulli trial with probability p.
    bool bernoulli(double p) noexcept;

    /// Fisher–Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& values) noexcept {
        for (std::size_t i = values.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(uniform_index(i));
            using std::swap;
            swap(values[i - 1], values[j]);
        }
    }

private:
    Xoshiro256pp gen_;
    std::uint64_t seed_;
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

} // namespace relperf::stats
