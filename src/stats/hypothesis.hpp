#pragma once
//! \file hypothesis.hpp
//! Classical two-sample tests and effect sizes. These serve as *baseline
//! comparators* against which the paper's bootstrap comparator is ablated
//! (`bench/ablation_comparators`), and as diagnostics in reports.

#include <span>

namespace relperf::stats {

/// Result of a two-sample location test.
struct TestResult {
    double statistic = 0.0; ///< Test statistic (U for MW, D for KS).
    double z = 0.0;         ///< Normal-approximation z-score (MW only).
    double p_value = 1.0;   ///< Two-sided p-value.
};

/// Mann–Whitney U test (a.k.a. Wilcoxon rank-sum), two-sided, with normal
/// approximation, continuity correction, and tie correction of the variance.
/// Suitable for n, m >= 8; exact enumeration is deliberately not implemented
/// (relperf never compares fewer than ~10 measurements).
[[nodiscard]] TestResult mann_whitney_u(std::span<const double> a,
                                        std::span<const double> b);

/// Two-sample Kolmogorov–Smirnov test with the asymptotic Kolmogorov
/// distribution for the p-value.
[[nodiscard]] TestResult kolmogorov_smirnov(std::span<const double> a,
                                            std::span<const double> b);

/// Cliff's delta in [-1, 1]: P(a < b) - P(a > b).
/// Negative => a tends to be larger (slower, for time measurements).
[[nodiscard]] double cliffs_delta(std::span<const double> a, std::span<const double> b);

/// Hodges–Lehmann shift estimator: median of all pairwise differences
/// (b_j - a_i). Positive => b is larger than a by that amount.
[[nodiscard]] double hodges_lehmann_shift(std::span<const double> a,
                                          std::span<const double> b);

/// Asymptotic survival function of the Kolmogorov distribution,
/// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2); exposed for tests.
[[nodiscard]] double kolmogorov_survival(double lambda) noexcept;

/// Standard normal survival function P(Z > z); exposed for tests.
[[nodiscard]] double normal_survival(double z) noexcept;

} // namespace relperf::stats
