#include "stats/rng.hpp"

#include <cmath>

namespace relperf::stats {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
} // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void Xoshiro256pp::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t jump_word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump_word & (std::uint64_t{1} << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (void)(*this)();
        }
    }
    s_ = {s0, s1, s2, s3};
}

Rng Rng::child(std::uint64_t stream) const noexcept {
    SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
    return Rng(sm.next());
}

double Rng::uniform() noexcept {
    // Top 53 bits -> double in [0, 1).
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // Lemire's nearly-divisionless method with rejection.
    std::uint64_t x = gen_();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (l < threshold) {
            x = gen_();
            m = static_cast<__uint128_t>(x) * n;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) noexcept {
    return std::exp(normal(mu_log, sigma_log));
}

double Rng::exponential(double lambda) noexcept {
    return -std::log(1.0 - uniform()) / lambda;
}

double Rng::pareto(double x_m, double alpha) noexcept {
    return x_m / std::pow(1.0 - uniform(), 1.0 / alpha);
}

bool Rng::bernoulli(double p) noexcept {
    return uniform() < p;
}

} // namespace relperf::stats
