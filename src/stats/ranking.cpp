#include "stats/ranking.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace relperf::stats {

namespace {

void check_paired(std::span<const double> a, std::span<const double> b) {
    RELPERF_REQUIRE(a.size() == b.size(), "ranking: size mismatch");
    RELPERF_REQUIRE(a.size() >= 2, "ranking: need at least two elements");
}

} // namespace

std::vector<double> midrank(std::span<const double> values) {
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t x, std::size_t y) { return values[x] < values[y]; });

    std::vector<double> ranks(n);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j < n && values[order[j]] == values[order[i]]) ++j;
        const double rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
        for (std::size_t k = i; k < j; ++k) ranks[order[k]] = rank;
        i = j;
    }
    return ranks;
}

double kendall_tau_b(std::span<const double> a, std::span<const double> b) {
    check_paired(a, b);
    const std::size_t n = a.size();
    double concordant = 0.0;
    double discordant = 0.0;
    double ties_a = 0.0; // tied in a only
    double ties_b = 0.0; // tied in b only
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double da = a[i] - a[j];
            const double db = b[i] - b[j];
            if (da == 0.0 && db == 0.0) continue; // tied in both: excluded
            if (da == 0.0) {
                ties_a += 1.0;
            } else if (db == 0.0) {
                ties_b += 1.0;
            } else if ((da > 0.0) == (db > 0.0)) {
                concordant += 1.0;
            } else {
                discordant += 1.0;
            }
        }
    }
    const double denom = std::sqrt((concordant + discordant + ties_a) *
                                   (concordant + discordant + ties_b));
    if (denom == 0.0) return 0.0; // one variable constant
    return (concordant - discordant) / denom;
}

double spearman_rho(std::span<const double> a, std::span<const double> b) {
    check_paired(a, b);
    const std::vector<double> ra = midrank(a);
    const std::vector<double> rb = midrank(b);
    const double ma = mean(ra);
    const double mb = mean(rb);
    double cov = 0.0;
    double va = 0.0;
    double vb = 0.0;
    for (std::size_t i = 0; i < ra.size(); ++i) {
        const double da = ra[i] - ma;
        const double db = rb[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    const double denom = std::sqrt(va * vb);
    if (denom == 0.0) return 0.0;
    return cov / denom;
}

double pairwise_disagreement(std::span<const double> a, std::span<const double> b) {
    check_paired(a, b);
    const std::size_t n = a.size();
    double ordered = 0.0;
    double discordant = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double da = a[i] - a[j];
            if (da == 0.0) continue;
            ordered += 1.0;
            const double db = b[i] - b[j];
            if (db == 0.0 || (da > 0.0) != (db > 0.0)) discordant += 1.0;
        }
    }
    return ordered == 0.0 ? 0.0 : discordant / ordered;
}

namespace {

void check_labels(std::span<const int> a, std::span<const int> b) {
    RELPERF_REQUIRE(a.size() == b.size(), "rand_index: size mismatch");
    RELPERF_REQUIRE(a.size() >= 2, "rand_index: need at least two elements");
}

} // namespace

double rand_index(std::span<const int> labels_a, std::span<const int> labels_b) {
    check_labels(labels_a, labels_b);
    const std::size_t n = labels_a.size();
    double agree = 0.0;
    double pairs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const bool same_a = labels_a[i] == labels_a[j];
            const bool same_b = labels_b[i] == labels_b[j];
            if (same_a == same_b) agree += 1.0;
            pairs += 1.0;
        }
    }
    return agree / pairs;
}

double adjusted_rand_index(std::span<const int> labels_a,
                           std::span<const int> labels_b) {
    check_labels(labels_a, labels_b);
    const std::size_t n = labels_a.size();

    // Pair counts: a = same/same, b = same in A only, c = same in B only.
    double ss = 0.0; // same in both
    double sa = 0.0; // same in A (total)
    double sb = 0.0; // same in B (total)
    double pairs = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const bool same_a = labels_a[i] == labels_a[j];
            const bool same_b = labels_b[i] == labels_b[j];
            if (same_a && same_b) ss += 1.0;
            if (same_a) sa += 1.0;
            if (same_b) sb += 1.0;
            pairs += 1.0;
        }
    }
    const double expected = sa * sb / pairs;
    const double max_index = 0.5 * (sa + sb);
    if (max_index == expected) {
        // Both partitions are all-singletons or all-one-cluster: identical
        // structure => perfect agreement.
        return 1.0;
    }
    return (ss - expected) / (max_index - expected);
}

} // namespace relperf::stats
