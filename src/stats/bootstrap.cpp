#include "stats/bootstrap.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

namespace relperf::stats {

void resample(std::span<const double> sample, std::size_t m, Rng& rng,
              std::vector<double>& out) {
    RELPERF_REQUIRE(!sample.empty(), "resample: empty sample");
    RELPERF_REQUIRE(m > 0, "resample: resample size must be positive");
    out.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        out[i] = sample[static_cast<std::size_t>(rng.uniform_index(sample.size()))];
    }
}

std::vector<double> resample(std::span<const double> sample, std::size_t m, Rng& rng) {
    std::vector<double> out;
    resample(sample, m, rng, out);
    return out;
}

std::vector<double> bootstrap_distribution(std::span<const double> sample,
                                           const Statistic& stat,
                                           std::size_t rounds, Rng& rng) {
    RELPERF_REQUIRE(rounds > 0, "bootstrap_distribution: rounds must be positive");
    std::vector<double> out;
    out.reserve(rounds);
    std::vector<double> scratch;
    for (std::size_t r = 0; r < rounds; ++r) {
        resample(sample, sample.size(), rng, scratch);
        out.push_back(stat(scratch));
    }
    return out;
}

Interval bootstrap_ci(std::span<const double> sample, const Statistic& stat,
                      std::size_t rounds, double alpha, Rng& rng) {
    RELPERF_REQUIRE(alpha > 0.0 && alpha < 1.0, "bootstrap_ci: alpha must be in (0,1)");
    std::vector<double> dist = bootstrap_distribution(sample, stat, rounds, rng);
    const std::vector<double> sorted = sorted_copy(dist);
    Interval ci;
    ci.lo = quantile_sorted(sorted, alpha / 2.0);
    ci.hi = quantile_sorted(sorted, 1.0 - alpha / 2.0);
    return ci;
}

} // namespace relperf::stats
