#include "stats/histogram.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"
#include "support/str.hpp"

#include <algorithm>
#include <cmath>

namespace relperf::stats {

Histogram::Histogram(std::span<const double> sample, double lo, double hi,
                     std::size_t bin_count)
    : lo_(lo), hi_(hi), counts_(bin_count, 0) {
    RELPERF_REQUIRE(!sample.empty(), "Histogram: empty sample");
    RELPERF_REQUIRE(bin_count > 0, "Histogram: need at least one bin");
    RELPERF_REQUIRE(hi > lo, "Histogram: hi must exceed lo");

    const double width = (hi_ - lo_) / static_cast<double>(bin_count);
    for (const double x : sample) {
        const double offset = (x - lo_) / width;
        auto bin = offset <= 0.0
                       ? std::size_t{0}
                       : static_cast<std::size_t>(offset);
        bin = std::min(bin, bin_count - 1); // clamp top edge + outliers
        ++counts_[bin];
        ++total_;
    }
}

std::size_t Histogram::fd_bin_count(std::span<const double> sample, double lo, double hi) {
    RELPERF_REQUIRE(!sample.empty(), "Histogram: empty sample");
    const std::vector<double> sorted = sorted_copy(sample);
    const double iqr =
        quantile_sorted(sorted, 0.75) - quantile_sorted(sorted, 0.25);
    const double n = static_cast<double>(sample.size());
    double width = 2.0 * iqr / std::cbrt(n); // Freedman–Diaconis
    if (width <= 0.0) {
        // Degenerate IQR: fall back to Sturges.
        const double bins = std::ceil(std::log2(n) + 1.0);
        return static_cast<std::size_t>(std::max(1.0, bins));
    }
    const double bins = std::ceil((hi - lo) / width);
    return static_cast<std::size_t>(std::clamp(bins, 1.0, 512.0));
}

Histogram Histogram::automatic(std::span<const double> sample) {
    RELPERF_REQUIRE(!sample.empty(), "Histogram: empty sample");
    const auto [lo_it, hi_it] = std::minmax_element(sample.begin(), sample.end());
    double lo = *lo_it;
    double hi = *hi_it;
    if (lo == hi) { // widen degenerate range
        lo -= 0.5;
        hi += 0.5;
    }
    return Histogram(sample, lo, hi, fd_bin_count(sample, lo, hi));
}

std::size_t Histogram::count(std::size_t bin) const {
    RELPERF_REQUIRE(bin < counts_.size(), "Histogram: bin out of range");
    return counts_[bin];
}

double Histogram::bin_center(std::size_t bin) const {
    RELPERF_REQUIRE(bin < counts_.size(), "Histogram: bin out of range");
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

double Histogram::density(std::size_t bin) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::render_ascii(std::size_t width, const std::string& title) const {
    const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
    std::string out;
    if (!title.empty()) out += title + '\n';
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const std::size_t bar =
            peak == 0 ? 0
                      : (counts_[b] * width + peak / 2) / peak; // rounded scale
        out += str::format("%12.6g | ", bin_center(b));
        out += std::string(bar, '#');
        out += str::format("  (%zu)\n", counts_[b]);
    }
    return out;
}

} // namespace relperf::stats
