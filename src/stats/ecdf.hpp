#pragma once
//! \file ecdf.hpp
//! Empirical distribution wrapper: a sample sorted once, with cheap quantile
//! and ECDF evaluation plus distribution-overlap measures. The bootstrap
//! comparator and the report module both operate on EmpiricalDistribution.

#include <span>
#include <vector>

namespace relperf::stats {

/// Immutable sorted view over one sample of measurements.
class EmpiricalDistribution {
public:
    /// Copies and sorts the sample. Throws InvalidArgument on empty input.
    explicit EmpiricalDistribution(std::span<const double> sample);

    [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
    [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }
    [[nodiscard]] double min() const noexcept { return sorted_.front(); }
    [[nodiscard]] double max() const noexcept { return sorted_.back(); }

    /// Type-7 quantile, p in [0,1].
    [[nodiscard]] double quantile(double p) const;

    /// ECDF: fraction of sample values <= x.
    [[nodiscard]] double cdf(double x) const noexcept;

    /// P(X < y_rand) + 0.5 P(X == y_rand): probability that a random draw of
    /// this distribution is smaller than a random draw of `other`
    /// (the common-language effect size; 0.5 means indistinguishable).
    [[nodiscard]] double prob_less_than(const EmpiricalDistribution& other) const noexcept;

    /// Overlap coefficient in [0,1], computed from histograms with a shared
    /// axis: sum_b min(density_a(b), density_b(b)). 1 = identical supports.
    [[nodiscard]] double overlap(const EmpiricalDistribution& other,
                                 std::size_t bins = 64) const;

private:
    std::vector<double> sorted_;
};

} // namespace relperf::stats
