#include "stats/ecdf.hpp"

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>

namespace relperf::stats {

EmpiricalDistribution::EmpiricalDistribution(std::span<const double> sample)
    : sorted_(sorted_copy(sample)) {
    RELPERF_REQUIRE(!sorted_.empty(), "EmpiricalDistribution: empty sample");
}

double EmpiricalDistribution::quantile(double p) const {
    return quantile_sorted(sorted_, p);
}

double EmpiricalDistribution::cdf(double x) const noexcept {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::prob_less_than(const EmpiricalDistribution& other) const noexcept {
    // Two-pointer merge: counts pairs (x, y) with x < y and ties at half
    // weight, in O(n + m) over the sorted arrays.
    const std::vector<double>& xs = sorted_;
    const std::vector<double>& ys = other.sorted_;
    double wins = 0.0;
    std::size_t xi = 0;
    for (const double y : ys) {
        while (xi < xs.size() && xs[xi] < y) ++xi;
        // xs[0..xi) < y
        std::size_t tie_hi = xi;
        while (tie_hi < xs.size() && xs[tie_hi] == y) ++tie_hi;
        wins += static_cast<double>(xi) + 0.5 * static_cast<double>(tie_hi - xi);
    }
    return wins / (static_cast<double>(xs.size()) * static_cast<double>(ys.size()));
}

double EmpiricalDistribution::overlap(const EmpiricalDistribution& other,
                                      std::size_t bins) const {
    RELPERF_REQUIRE(bins > 0, "overlap: need at least one bin");
    const double lo = std::min(min(), other.min());
    double hi = std::max(max(), other.max());
    if (hi == lo) return 1.0; // both samples are a single identical point
    const Histogram ha(sorted_, lo, hi, bins);
    const Histogram hb(other.sorted_, lo, hi, bins);
    double acc = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
        acc += std::min(ha.density(b), hb.density(b));
    }
    return acc;
}

} // namespace relperf::stats
