#include "stats/hypothesis.hpp"

#include "stats/descriptive.hpp"
#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace relperf::stats {

double normal_survival(double z) noexcept {
    return 0.5 * std::erfc(z / std::sqrt(2.0));
}

double kolmogorov_survival(double lambda) noexcept {
    if (lambda <= 0.0) return 1.0;
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        const double term = std::exp(-2.0 * k * k * lambda * lambda);
        sum += sign * term;
        if (term < 1e-12) break;
        sign = -sign;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

namespace {

/// Midranks of the pooled sample plus the tie-group sizes.
struct RankInfo {
    std::vector<double> ranks_a; // midranks of sample a in the pooled order
    double tie_term = 0.0;       // sum over tie groups of (t^3 - t)
};

RankInfo midranks(std::span<const double> a, std::span<const double> b) {
    struct Tagged {
        double value;
        bool from_a;
    };
    std::vector<Tagged> pooled;
    pooled.reserve(a.size() + b.size());
    for (const double x : a) pooled.push_back({x, true});
    for (const double x : b) pooled.push_back({x, false});
    std::sort(pooled.begin(), pooled.end(),
              [](const Tagged& l, const Tagged& r) { return l.value < r.value; });

    RankInfo info;
    info.ranks_a.reserve(a.size());
    std::size_t i = 0;
    while (i < pooled.size()) {
        std::size_t j = i;
        while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
        const double t = static_cast<double>(j - i);
        const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
        if (t > 1.0) info.tie_term += t * t * t - t;
        for (std::size_t k = i; k < j; ++k) {
            if (pooled[k].from_a) info.ranks_a.push_back(midrank);
        }
        i = j;
    }
    return info;
}

} // namespace

TestResult mann_whitney_u(std::span<const double> a, std::span<const double> b) {
    RELPERF_REQUIRE(!a.empty() && !b.empty(), "mann_whitney_u: empty sample");
    const double n = static_cast<double>(a.size());
    const double m = static_cast<double>(b.size());

    const RankInfo info = midranks(a, b);
    double rank_sum_a = 0.0;
    for (const double r : info.ranks_a) rank_sum_a += r;

    const double u_a = rank_sum_a - n * (n + 1.0) / 2.0;
    const double mu = n * m / 2.0;
    const double total = n + m;
    const double tie_correction = info.tie_term / (total * (total - 1.0));
    const double sigma2 = n * m / 12.0 * ((total + 1.0) - tie_correction);

    TestResult res;
    res.statistic = u_a;
    if (sigma2 <= 0.0) {
        // All pooled values identical: no evidence of any difference.
        res.z = 0.0;
        res.p_value = 1.0;
        return res;
    }
    const double sigma = std::sqrt(sigma2);
    // Continuity correction towards the null.
    const double delta = u_a - mu;
    const double cc = delta > 0.0 ? -0.5 : (delta < 0.0 ? 0.5 : 0.0);
    res.z = (delta + cc) / sigma;
    res.p_value = std::clamp(2.0 * normal_survival(std::fabs(res.z)), 0.0, 1.0);
    return res;
}

TestResult kolmogorov_smirnov(std::span<const double> a, std::span<const double> b) {
    RELPERF_REQUIRE(!a.empty() && !b.empty(), "kolmogorov_smirnov: empty sample");
    const std::vector<double> sa = sorted_copy(a);
    const std::vector<double> sb = sorted_copy(b);
    const double n = static_cast<double>(sa.size());
    const double m = static_cast<double>(sb.size());

    double d = 0.0;
    std::size_t ia = 0;
    std::size_t ib = 0;
    while (ia < sa.size() && ib < sb.size()) {
        const double x = std::min(sa[ia], sb[ib]);
        while (ia < sa.size() && sa[ia] <= x) ++ia;
        while (ib < sb.size() && sb[ib] <= x) ++ib;
        const double fa = static_cast<double>(ia) / n;
        const double fb = static_cast<double>(ib) / m;
        d = std::max(d, std::fabs(fa - fb));
    }

    TestResult res;
    res.statistic = d;
    const double en = std::sqrt(n * m / (n + m));
    // Asymptotic p with the standard small-sample adjustment.
    res.p_value = kolmogorov_survival((en + 0.12 + 0.11 / en) * d);
    return res;
}

double cliffs_delta(std::span<const double> a, std::span<const double> b) {
    RELPERF_REQUIRE(!a.empty() && !b.empty(), "cliffs_delta: empty sample");
    // O((n+m) log) via sorted b and binary searches.
    const std::vector<double> sb = sorted_copy(b);
    double greater = 0.0; // pairs with a_i < b_j
    double less = 0.0;    // pairs with a_i > b_j
    for (const double x : a) {
        const auto lo = std::lower_bound(sb.begin(), sb.end(), x);
        const auto hi = std::upper_bound(sb.begin(), sb.end(), x);
        greater += static_cast<double>(sb.end() - hi);
        less += static_cast<double>(lo - sb.begin());
    }
    const double pairs = static_cast<double>(a.size()) * static_cast<double>(b.size());
    return (greater - less) / pairs;
}

double hodges_lehmann_shift(std::span<const double> a, std::span<const double> b) {
    RELPERF_REQUIRE(!a.empty() && !b.empty(), "hodges_lehmann_shift: empty sample");
    std::vector<double> diffs;
    diffs.reserve(a.size() * b.size());
    for (const double x : a) {
        for (const double y : b) diffs.push_back(y - x);
    }
    return median(diffs);
}

} // namespace relperf::stats
