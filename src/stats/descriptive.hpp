#pragma once
//! \file descriptive.hpp
//! Descriptive statistics over samples of performance measurements.
//!
//! The paper's premise (Sec. I/III) is that a *single* summary number cannot
//! represent a noisy measurement distribution; nevertheless summaries are
//! needed for reports, calibration and the baseline comparators. This header
//! provides numerically-stable single-pass accumulation (Welford) and
//! order statistics (type-7 quantiles, the R/NumPy default).

#include <cstddef>
#include <span>
#include <vector>

namespace relperf::stats {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;
    void merge(const RunningStats& other) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
    /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Five-number-plus summary of a sample.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double q25 = 0.0;
    double median = 0.0;
    double q75 = 0.0;
    double max = 0.0;
    /// Coefficient of variation, stddev / mean (0 when mean == 0).
    double cv = 0.0;
};

/// Computes the full Summary; throws InvalidArgument on empty input.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// Mean of a sample; throws InvalidArgument on empty input.
[[nodiscard]] double mean(std::span<const double> sample);

/// Unbiased sample variance; 0 for fewer than two elements.
[[nodiscard]] double variance(std::span<const double> sample);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> sample);

/// Type-7 linear-interpolation quantile of *sorted* data, p in [0,1].
/// Precondition (checked): data non-empty, ascending.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double p);

/// Type-7 quantile via partial selection (std::nth_element) instead of a
/// full sort: O(n) expected vs O(n log n). Reorders `sample` in place.
/// Bit-identical to quantile_sorted on the sorted data — the interpolation
/// reads the same two order statistics with the same arithmetic (asserted in
/// tests over randomized inputs). This is the bootstrap comparator's
/// per-round selection, where the resample buffer is scratch anyway.
[[nodiscard]] double quantile_partial(std::span<double> sample, double p);

/// Quantile of unsorted data (copies + sorts internally).
[[nodiscard]] double quantile(std::span<const double> sample, double p);

/// Median convenience wrapper.
[[nodiscard]] double median(std::span<const double> sample);

/// Median absolute deviation (scaled by 1.4826 for normal consistency).
[[nodiscard]] double mad(std::span<const double> sample);

/// Mean after removing the `trim` fraction from each tail (0 <= trim < 0.5).
[[nodiscard]] double trimmed_mean(std::span<const double> sample, double trim);

/// Geometric mean; requires strictly positive values.
[[nodiscard]] double geometric_mean(std::span<const double> sample);

/// Inverse standard-normal CDF (the z such that Phi(z) = p), p in (0, 1).
/// Acklam's rational approximation refined by one Halley step — absolute
/// error below 1e-9 across the domain, deterministic (pure arithmetic, no
/// tables, no randomness). Used by the confidence-targeted stopping rule to
/// turn a confidence level into a z critical value. Throws InvalidArgument
/// outside (0, 1).
[[nodiscard]] double normal_quantile(double p);

/// Returns a sorted copy.
[[nodiscard]] std::vector<double> sorted_copy(std::span<const double> sample);

/// True if `values` is ascending (non-strict).
[[nodiscard]] bool is_sorted_ascending(std::span<const double> values) noexcept;

} // namespace relperf::stats
