#pragma once
//! \file histogram.hpp
//! Fixed-bin histograms with Freedman–Diaconis automatic binning plus an
//! ASCII renderer used by `bench/fig1b_distributions` to print the paper's
//! Figure 1b as terminal output.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace relperf::stats {

/// An immutable, already-binned histogram.
class Histogram {
public:
    /// Bins `sample` into `bin_count` equal-width bins over [lo, hi].
    /// Values outside [lo, hi] are clamped into the edge bins so that
    /// histograms of several algorithms can share one axis.
    Histogram(std::span<const double> sample, double lo, double hi, std::size_t bin_count);

    /// Automatic range ([min, max]) and Freedman–Diaconis bin width
    /// (falls back to Sturges when IQR == 0).
    static Histogram automatic(std::span<const double> sample);

    /// Number of bins chosen by the Freedman–Diaconis rule for `sample` over
    /// an explicit [lo, hi] range (used to share an axis across samples).
    static std::size_t fd_bin_count(std::span<const double> sample, double lo, double hi);

    [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
    [[nodiscard]] double lo() const noexcept { return lo_; }
    [[nodiscard]] double hi() const noexcept { return hi_; }
    [[nodiscard]] std::size_t count(std::size_t bin) const;
    [[nodiscard]] std::size_t total() const noexcept { return total_; }
    /// Center value of bin `bin`.
    [[nodiscard]] double bin_center(std::size_t bin) const;
    /// Fraction of samples in bin `bin`.
    [[nodiscard]] double density(std::size_t bin) const;

    /// Renders a horizontal-bar ASCII histogram.
    /// `width` = maximum bar width in characters.
    [[nodiscard]] std::string render_ascii(std::size_t width = 50,
                                           const std::string& title = "") const;

private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace relperf::stats
