#include "stats/descriptive.hpp"

#include "support/error.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace relperf::stats {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double RunningStats::variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
    return std::sqrt(variance());
}

double mean(std::span<const double> sample) {
    RELPERF_REQUIRE(!sample.empty(), "mean: empty sample");
    RunningStats acc;
    for (const double x : sample) acc.add(x);
    return acc.mean();
}

double variance(std::span<const double> sample) {
    RELPERF_REQUIRE(!sample.empty(), "variance: empty sample");
    RunningStats acc;
    for (const double x : sample) acc.add(x);
    return acc.variance();
}

double stddev(std::span<const double> sample) {
    return std::sqrt(variance(sample));
}

std::vector<double> sorted_copy(std::span<const double> sample) {
    std::vector<double> out(sample.begin(), sample.end());
    std::sort(out.begin(), out.end());
    return out;
}

bool is_sorted_ascending(std::span<const double> values) noexcept {
    return std::is_sorted(values.begin(), values.end());
}

double quantile_sorted(std::span<const double> sorted, double p) {
    RELPERF_REQUIRE(!sorted.empty(), "quantile_sorted: empty sample");
    RELPERF_REQUIRE(p >= 0.0 && p <= 1.0, "quantile_sorted: p must be in [0,1]");
    RELPERF_REQUIRE(is_sorted_ascending(sorted), "quantile_sorted: data not sorted");
    if (sorted.size() == 1) return sorted[0];
    const double h = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile_partial(std::span<double> sample, double p) {
    RELPERF_REQUIRE(!sample.empty(), "quantile_partial: empty sample");
    RELPERF_REQUIRE(p >= 0.0 && p <= 1.0, "quantile_partial: p must be in [0,1]");
    if (sample.size() == 1) return sample[0];
    const double h = p * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(h);
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double frac = h - static_cast<double>(lo);
    const auto lo_it = sample.begin() + static_cast<std::ptrdiff_t>(lo);
    std::nth_element(sample.begin(), lo_it, sample.end());
    const double v_lo = sample[lo];
    // The (lo+1)-th order statistic is the minimum of the partition above
    // lo; when hi == lo (p == 1) the interpolation collapses to v_lo.
    const double v_hi =
        hi == lo ? v_lo : *std::min_element(lo_it + 1, sample.end());
    return v_lo + frac * (v_hi - v_lo);
}

double quantile(std::span<const double> sample, double p) {
    const std::vector<double> sorted = sorted_copy(sample);
    return quantile_sorted(sorted, p);
}

double median(std::span<const double> sample) {
    return quantile(sample, 0.5);
}

double mad(std::span<const double> sample) {
    RELPERF_REQUIRE(!sample.empty(), "mad: empty sample");
    // One sort for the sample median; the deviations then reuse the buffer
    // and only need a partial selection, not a second full sort.
    std::vector<double> buf = sorted_copy(sample);
    const double med = quantile_sorted(buf, 0.5);
    for (double& x : buf) x = std::fabs(x - med);
    // 1.4826 makes MAD a consistent sigma estimator for the normal.
    return 1.4826 * quantile_partial(buf, 0.5);
}

double trimmed_mean(std::span<const double> sample, double trim) {
    RELPERF_REQUIRE(!sample.empty(), "trimmed_mean: empty sample");
    RELPERF_REQUIRE(trim >= 0.0 && trim < 0.5, "trimmed_mean: trim must be in [0, 0.5)");
    const std::vector<double> sorted = sorted_copy(sample);
    const auto cut = static_cast<std::size_t>(trim * static_cast<double>(sorted.size()));
    RELPERF_ASSERT(2 * cut < sorted.size(), "trimmed_mean: trim removed everything");
    RunningStats acc;
    for (std::size_t i = cut; i < sorted.size() - cut; ++i) acc.add(sorted[i]);
    return acc.mean();
}

double geometric_mean(std::span<const double> sample) {
    RELPERF_REQUIRE(!sample.empty(), "geometric_mean: empty sample");
    double log_sum = 0.0;
    for (const double x : sample) {
        RELPERF_REQUIRE(x > 0.0, "geometric_mean: values must be positive");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(sample.size()));
}

Summary summarize(std::span<const double> sample) {
    RELPERF_REQUIRE(!sample.empty(), "summarize: empty sample");
    const std::vector<double> sorted = sorted_copy(sample);
    RunningStats acc;
    for (const double x : sorted) acc.add(x);

    Summary s;
    s.count = acc.count();
    s.mean = acc.mean();
    s.stddev = acc.stddev();
    s.min = acc.min();
    s.max = acc.max();
    s.q25 = quantile_sorted(sorted, 0.25);
    s.median = quantile_sorted(sorted, 0.50);
    s.q75 = quantile_sorted(sorted, 0.75);
    s.cv = s.mean != 0.0 ? s.stddev / s.mean : 0.0;
    return s;
}

double normal_quantile(double p) {
    RELPERF_REQUIRE(p > 0.0 && p < 1.0,
                    "normal_quantile: p must be in (0, 1)");
    // Acklam's rational approximation (2003): three branches with relative
    // error < 1.15e-9, refined below by one Halley step against the actual
    // normal CDF (std::erfc), which pushes the absolute error past 1e-12 in
    // the central region.
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                   -2.759285104469687e+02, 1.383577518672690e+02,
                                   -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                   -1.556989798598866e+02, 6.680131188771972e+01,
                                   -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                   -2.400758277161838e+00, -2.549732539343734e+00,
                                   4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                   2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double p_low = 0.02425;

    double x = 0.0;
    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - p_low) {
        const double q = p - 0.5;
        const double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step: e = Phi(x) - p, u = e / phi(x).
    constexpr double inv_sqrt_2pi = 0.3989422804014327;
    const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
    const double u = e / (inv_sqrt_2pi * std::exp(-x * x / 2.0));
    x = x - u / (1.0 + x * u / 2.0);
    return x;
}

} // namespace relperf::stats
