#include "workloads/generator.hpp"

#include "support/error.hpp"

namespace relperf::workloads {

namespace {
std::size_t draw_in(std::size_t lo, std::size_t hi, stats::Rng& rng) {
    return lo + static_cast<std::size_t>(rng.uniform_index(hi - lo + 1));
}
} // namespace

TaskChain random_chain(const GeneratorConfig& config, stats::Rng& rng) {
    RELPERF_REQUIRE(config.min_tasks >= 1 && config.min_tasks <= config.max_tasks,
                    "random_chain: invalid task-count range");
    RELPERF_REQUIRE(config.min_size >= 2 && config.min_size <= config.max_size,
                    "random_chain: invalid size range");
    RELPERF_REQUIRE(config.min_iters >= 1 && config.min_iters <= config.max_iters,
                    "random_chain: invalid iters range");
    RELPERF_REQUIRE(config.gemm_prob >= 0.0 && config.gemm_prob <= 1.0,
                    "random_chain: gemm_prob must be a probability");
    for (const std::string& backend : config.backends) {
        RELPERF_REQUIRE(!backend.empty(),
                        "random_chain: backend names must not be empty");
    }

    TaskChain chain;
    chain.name = "random-chain";
    if (!config.backends.empty()) {
        chain.backend =
            config.backends[rng.uniform_index(config.backends.size())];
    }
    const std::size_t tasks = draw_in(config.min_tasks, config.max_tasks, rng);
    chain.tasks.reserve(tasks);
    for (std::size_t i = 0; i < tasks; ++i) {
        TaskSpec spec;
        spec.name = "L" + std::to_string(i + 1);
        spec.kind = rng.bernoulli(config.gemm_prob) ? TaskKind::GemmLoop
                                                    : TaskKind::RlsLoop;
        spec.size = draw_in(config.min_size, config.max_size, rng);
        spec.iters = draw_in(config.min_iters, config.max_iters, rng);
        chain.tasks.push_back(std::move(spec));
    }
    return chain;
}

} // namespace relperf::workloads
