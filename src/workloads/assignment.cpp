#include "workloads/assignment.hpp"

#include "support/error.hpp"

namespace relperf::workloads {

char to_char(Placement p) noexcept {
    return static_cast<char>(p);
}

Placement placement_from_char(char c) {
    RELPERF_REQUIRE(c == 'D' || c == 'A',
                    std::string("placement_from_char: expected 'D' or 'A', got '") +
                        c + "'");
    return static_cast<Placement>(c);
}

DeviceAssignment::DeviceAssignment(const std::string& letters) {
    RELPERF_REQUIRE(!letters.empty(), "DeviceAssignment: empty letter string");
    placements_.reserve(letters.size());
    for (const char c : letters) placements_.push_back(placement_from_char(c));
}

DeviceAssignment::DeviceAssignment(std::vector<Placement> placements)
    : placements_(std::move(placements)) {
    RELPERF_REQUIRE(!placements_.empty(), "DeviceAssignment: empty placement vector");
}

Placement DeviceAssignment::at(std::size_t task_index) const {
    RELPERF_REQUIRE(task_index < placements_.size(),
                    "DeviceAssignment: task index out of range");
    return placements_[task_index];
}

std::string DeviceAssignment::str() const {
    std::string s;
    s.reserve(placements_.size());
    for (const Placement p : placements_) s.push_back(to_char(p));
    return s;
}

std::size_t DeviceAssignment::accelerator_count() const noexcept {
    std::size_t n = 0;
    for (const Placement p : placements_) {
        if (p == Placement::Accelerator) ++n;
    }
    return n;
}

std::size_t DeviceAssignment::switch_count() const noexcept {
    std::size_t switches = 0;
    Placement prev = Placement::Device; // the chain is invoked from the edge
    for (const Placement p : placements_) {
        if (p != prev) ++switches;
        prev = p;
    }
    return switches;
}

std::vector<DeviceAssignment> enumerate_assignments(std::size_t task_count) {
    RELPERF_REQUIRE(task_count > 0, "enumerate_assignments: need at least one task");
    RELPERF_REQUIRE(task_count < 20, "enumerate_assignments: 2^k would explode");
    std::vector<DeviceAssignment> out;
    const std::size_t total = std::size_t{1} << task_count;
    out.reserve(total);
    for (std::size_t mask = 0; mask < total; ++mask) {
        std::vector<Placement> p(task_count, Placement::Device);
        for (std::size_t bit = 0; bit < task_count; ++bit) {
            // Most-significant task first so the order is DD, DA, AD, AA.
            if (mask & (std::size_t{1} << (task_count - 1 - bit))) {
                p[bit] = Placement::Accelerator;
            }
        }
        out.emplace_back(std::move(p));
    }
    return out;
}

} // namespace relperf::workloads
