#include "workloads/assignment.hpp"

#include "support/error.hpp"
#include "support/str.hpp"

#include <set>

namespace relperf::workloads {

char to_char(Placement p) noexcept {
    return static_cast<char>(p);
}

Placement placement_from_char(char c) {
    RELPERF_REQUIRE(c == 'D' || c == 'A',
                    std::string("placement_from_char: expected 'D' or 'A', got '") +
                        c + "'");
    return static_cast<Placement>(c);
}

namespace {

/// Backend tokens in assignment strings: registry-style names only, so the
/// extended syntax stays unambiguous (no ':', ',' or whitespace).
bool valid_backend_token(const std::string& token) {
    if (token.empty()) return false;
    for (const char c : token) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok) return false;
    }
    return true;
}

void require_policy_backend(const std::string& backend) {
    RELPERF_REQUIRE(backend.empty() || valid_backend_token(backend),
                    "VariantAssignment: backend name '" + backend +
                        "' must contain only [A-Za-z0-9_-] characters");
}

std::vector<Placement> placements_of(const std::vector<ExecutionPolicy>& policies) {
    std::vector<Placement> out;
    out.reserve(policies.size());
    for (const ExecutionPolicy& policy : policies) out.push_back(policy.placement);
    return out;
}

/// Parses either assignment syntax into policies. Plain letter strings
/// ("DDA") mean backend-inherit per task; the extended syntax is
/// comma-separated `P[:backend]` fields, one per task.
std::vector<ExecutionPolicy> parse_policies(const std::string& text) {
    RELPERF_REQUIRE(!text.empty(), "VariantAssignment: empty assignment string");
    std::vector<ExecutionPolicy> policies;

    if (text.find(',') == std::string::npos &&
        text.find(':') == std::string::npos) {
        policies.reserve(text.size());
        for (const char c : text) {
            policies.push_back(ExecutionPolicy{placement_from_char(c), ""});
        }
        return policies;
    }

    for (const std::string& field : str::split(text, ',')) {
        RELPERF_REQUIRE(!field.empty(),
                        "VariantAssignment: empty task field in '" + text + "'");
        ExecutionPolicy policy;
        policy.placement = placement_from_char(field.front());
        if (field.size() > 1) {
            RELPERF_REQUIRE(field[1] == ':',
                            "VariantAssignment: task field '" + field +
                                "' must be 'D', 'A', 'D:<backend>' or "
                                "'A:<backend>'");
            policy.backend = field.substr(2);
            RELPERF_REQUIRE(valid_backend_token(policy.backend),
                            "VariantAssignment: bad backend name in field '" +
                                field + "'");
        }
        policies.push_back(std::move(policy));
    }
    return policies;
}

} // namespace

DeviceAssignment::DeviceAssignment(const std::string& letters) {
    RELPERF_REQUIRE(!letters.empty(), "DeviceAssignment: empty letter string");
    placements_.reserve(letters.size());
    for (const char c : letters) placements_.push_back(placement_from_char(c));
}

DeviceAssignment::DeviceAssignment(std::vector<Placement> placements)
    : placements_(std::move(placements)) {
    RELPERF_REQUIRE(!placements_.empty(), "DeviceAssignment: empty placement vector");
}

Placement DeviceAssignment::at(std::size_t task_index) const {
    RELPERF_REQUIRE(task_index < placements_.size(),
                    "DeviceAssignment: task index out of range");
    return placements_[task_index];
}

std::string DeviceAssignment::str() const {
    std::string s;
    s.reserve(placements_.size());
    for (const Placement p : placements_) s.push_back(to_char(p));
    return s;
}

std::size_t DeviceAssignment::accelerator_count() const noexcept {
    std::size_t n = 0;
    for (const Placement p : placements_) {
        if (p == Placement::Accelerator) ++n;
    }
    return n;
}

std::size_t DeviceAssignment::switch_count() const noexcept {
    std::size_t switches = 0;
    Placement prev = Placement::Device; // the chain is invoked from the edge
    for (const Placement p : placements_) {
        if (p != prev) ++switches;
        prev = p;
    }
    return switches;
}

VariantAssignment::VariantAssignment(const std::string& text)
    : VariantAssignment(parse_policies(text)) {}

VariantAssignment::VariantAssignment(std::vector<ExecutionPolicy> policies)
    : policies_(std::move(policies)), placements_([this] {
          RELPERF_REQUIRE(!policies_.empty(),
                          "VariantAssignment: empty policy vector");
          for (const ExecutionPolicy& policy : policies_) {
              require_policy_backend(policy.backend);
          }
          return DeviceAssignment(placements_of(policies_));
      }()) {}

VariantAssignment::VariantAssignment(const DeviceAssignment& placements)
    : placements_(placements) {
    policies_.reserve(placements.size());
    for (const Placement p : placements.placements()) {
        policies_.push_back(ExecutionPolicy{p, ""});
    }
}

const ExecutionPolicy& VariantAssignment::at(std::size_t task_index) const {
    RELPERF_REQUIRE(task_index < policies_.size(),
                    "VariantAssignment: task index out of range");
    return policies_[task_index];
}

bool VariantAssignment::uniform_inherit() const noexcept {
    for (const ExecutionPolicy& policy : policies_) {
        if (!policy.backend.empty()) return false;
    }
    return true;
}

const std::string& VariantAssignment::resolved_backend(
    std::size_t task_index, const std::string& chain_default) const {
    const ExecutionPolicy& policy = at(task_index);
    return policy.backend.empty() ? chain_default : policy.backend;
}

std::string VariantAssignment::str() const {
    if (uniform_inherit()) return placements_.str();
    std::string out;
    for (std::size_t i = 0; i < policies_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.push_back(to_char(policies_[i].placement));
        if (!policies_[i].backend.empty()) {
            out.push_back(':');
            out += policies_[i].backend;
        }
    }
    return out;
}

std::vector<DeviceAssignment> enumerate_assignments(std::size_t task_count) {
    RELPERF_REQUIRE(task_count > 0, "enumerate_assignments: need at least one task");
    RELPERF_REQUIRE(
        task_count < kMaxEnumeratedTasks,
        str::format("enumerate_assignments: 2^k would explode for k = %zu "
                    "(limit: k < %zu); use subset search instead",
                    task_count, kMaxEnumeratedTasks));
    std::vector<DeviceAssignment> out;
    const std::size_t total = std::size_t{1} << task_count;
    out.reserve(total);
    for (std::size_t mask = 0; mask < total; ++mask) {
        std::vector<Placement> p(task_count, Placement::Device);
        for (std::size_t bit = 0; bit < task_count; ++bit) {
            // Most-significant task first so the order is DD, DA, AD, AA.
            if (mask & (std::size_t{1} << (task_count - 1 - bit))) {
                p[bit] = Placement::Accelerator;
            }
        }
        out.emplace_back(std::move(p));
    }
    return out;
}

std::vector<VariantAssignment> enumerate_variants(
    std::size_t task_count, const std::vector<std::string>& backends) {
    RELPERF_REQUIRE(task_count > 0, "enumerate_variants: need at least one task");
    RELPERF_REQUIRE(
        task_count < kMaxEnumeratedTasks,
        str::format("enumerate_variants: (2B)^k would explode for k = %zu "
                    "(limit: k < %zu); use subset search instead",
                    task_count, kMaxEnumeratedTasks));
    RELPERF_REQUIRE(!backends.empty(),
                    "enumerate_variants: need at least one backend");
    std::set<std::string> unique;
    for (const std::string& name : backends) {
        RELPERF_REQUIRE(valid_backend_token(name),
                        "enumerate_variants: bad backend name '" + name + "'");
        RELPERF_REQUIRE(unique.insert(name).second,
                        "enumerate_variants: duplicate backend '" + name + "'");
    }

    // (2B)^k, with the product guarded instead of computed blindly.
    const std::size_t choices = 2 * backends.size();
    std::size_t total = 1;
    for (std::size_t i = 0; i < task_count; ++i) {
        RELPERF_REQUIRE(
            total <= kMaxEnumeratedVariants / choices,
            str::format("enumerate_variants: (2*%zu)^%zu variants exceed the "
                        "%zu enumeration limit; use subset search instead",
                        backends.size(), task_count, kMaxEnumeratedVariants));
        total *= choices;
    }

    // Odometer over the backend tuple, most-significant task first; returns
    // false when the tuple wraps back to all-zero (the combo space is done).
    const auto advance = [&](std::vector<std::size_t>& digits) {
        std::size_t pos = task_count;
        while (pos > 0) {
            --pos;
            if (++digits[pos] < backends.size()) return true;
            digits[pos] = 0;
        }
        return false;
    };

    std::vector<VariantAssignment> out;
    out.reserve(total);
    for (const DeviceAssignment& placements : enumerate_assignments(task_count)) {
        std::vector<std::size_t> digits(task_count, 0);
        do {
            std::vector<ExecutionPolicy> policies;
            policies.reserve(task_count);
            for (std::size_t i = 0; i < task_count; ++i) {
                policies.push_back(
                    ExecutionPolicy{placements.at(i), backends[digits[i]]});
            }
            out.emplace_back(std::move(policies));
        } while (advance(digits));
    }
    return out;
}

} // namespace relperf::workloads
