#pragma once
//! \file task.hpp
//! Task abstraction for the paper's "scientific codes": a chain of loops,
//! each evaluating a mathematical expression (Procedure 5 / Figure 1a).
//!
//! A TaskSpec describes one loop (a `MathTask` in paper terms): the kernel it
//! iterates, the matrix order, and the iteration count. `task_cost` derives
//! the resource footprint (FLOPs, stream bytes, kernel-launch count) used by
//! the simulator's analytic cost model and by the FLOPs/energy selection
//! criteria of Section IV.

#include <cstddef>
#include <optional>
#include <string>

namespace relperf::workloads {

/// Kernel iterated by a task.
enum class TaskKind {
    RlsLoop,  ///< Procedure 6: regularized least squares on random matrices.
    GemmLoop, ///< Figure 1a: matrix-matrix multiplication loop.
};

[[nodiscard]] const char* to_string(TaskKind kind) noexcept;

/// Resource footprint of one task (aggregated over its iterations).
struct TaskCost {
    double flops = 0.0;       ///< Arithmetic operations.
    double bytes_in = 0.0;    ///< Bytes staged to a remote device per execution.
    double bytes_out = 0.0;   ///< Bytes returned from a remote device.
    double op_launches = 0.0; ///< Kernel launches (dispatch-overhead count).
};

/// One loop of the scientific code.
struct TaskSpec {
    std::string name;          ///< e.g. "L1".
    TaskKind kind = TaskKind::RlsLoop;
    std::size_t size = 0;      ///< Matrix order (Procedure 6 `size`).
    std::size_t iters = 1;     ///< Loop trip count (Procedure 6 `n`).
    /// Explicit footprint for calibrated workloads (e.g. the Figure 1a loops,
    /// whose aggregate costs are calibrated rather than derived).
    std::optional<TaskCost> cost_override;
};

/// Number of kernel launches one iteration of `kind` issues (randgen, GEMMs,
/// factorizations, ...). Matches the op graph TensorFlow would dispatch.
[[nodiscard]] double ops_per_iteration(TaskKind kind) noexcept;

/// Aggregate resource footprint of `spec` (honours cost_override).
[[nodiscard]] TaskCost task_cost(const TaskSpec& spec);

} // namespace relperf::workloads
