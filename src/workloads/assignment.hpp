#pragma once
//! \file assignment.hpp
//! Device assignments — the paper's algorithm space. Each mathematically
//! equivalent "algorithm" is one way of placing the tasks of a chain on the
//! edge **D**evice or the **A**ccelerator, written as a letter string such as
//! "DDA" (Table I) or "AD" (Figure 1a).
//!
//! Beyond the paper's binary space, a VariantAssignment attaches a per-task
//! *execution policy* — placement plus linalg backend — so the same chain can
//! be measured as "L1 on the portable kernels, L2 offloaded on vendor BLAS"
//! and every mix in between. With B backends per task the space grows from
//! 2^k to (2·B)^k, exactly the Sec. V regime where the methodology must be
//! applied to a subset of the space.

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::workloads {

/// Where a task runs.
enum class Placement : char {
    Device = 'D',      ///< Edge device (the data home; the code is invoked here).
    Accelerator = 'A', ///< Offload target (GPU / server / ...).
};

[[nodiscard]] char to_char(Placement p) noexcept;
[[nodiscard]] Placement placement_from_char(char c);

/// Enumeration explosion guard shared by enumerate_assignments and
/// enumerate_variants: chains of kMaxEnumeratedTasks or more tasks must go
/// through subset search (search::ModelGuidedSearch), not full enumeration.
inline constexpr std::size_t kMaxEnumeratedTasks = 20;

/// Upper bound on the *number* of enumerated variants ((2B)^k grows much
/// faster than 2^k, so enumerate_variants guards the product, too).
inline constexpr std::size_t kMaxEnumeratedVariants = std::size_t{1} << 20;

/// Immutable placement vector with the paper's letter-string syntax.
class DeviceAssignment {
public:
    /// Parses e.g. "DDA"; throws InvalidArgument on characters outside {D, A}
    /// or on an empty string.
    explicit DeviceAssignment(const std::string& letters);

    explicit DeviceAssignment(std::vector<Placement> placements);

    [[nodiscard]] std::size_t size() const noexcept { return placements_.size(); }
    [[nodiscard]] Placement at(std::size_t task_index) const;
    [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
        return placements_;
    }

    /// Letter string, e.g. "DDA".
    [[nodiscard]] std::string str() const;

    /// Paper-style algorithm name, e.g. "algDDA".
    [[nodiscard]] std::string alg_name() const { return "alg" + str(); }

    /// Number of tasks placed on the accelerator.
    [[nodiscard]] std::size_t accelerator_count() const noexcept;

    /// Number of device changes along the chain including the virtual start
    /// on the Device (the code is invoked from the edge, paper Sec. I).
    [[nodiscard]] std::size_t switch_count() const noexcept;

    [[nodiscard]] bool operator==(const DeviceAssignment& other) const noexcept {
        return placements_ == other.placements_;
    }

private:
    std::vector<Placement> placements_;
};

/// How one task of a chain is executed: where it runs and which linalg
/// backend its kernels use. An empty backend means "inherit" — the chain's
/// default backend (TaskChain::backend), else whatever backend is active on
/// the executing thread. A non-empty backend overrides the chain default for
/// this task only.
struct ExecutionPolicy {
    Placement placement = Placement::Device;
    std::string backend;

    [[nodiscard]] bool operator==(const ExecutionPolicy& other) const noexcept {
        return placement == other.placement && backend == other.backend;
    }
};

/// Immutable per-task execution-policy vector — the placement×backend
/// generalization of DeviceAssignment.
///
/// Text syntax: the paper's plain letter string ("DDA") stays valid and means
/// backend-inherit on every task. The extended syntax is comma-separated
/// per-task policies `P[:backend]`, e.g. "D:portable,A:blas" or "D,A:blas"
/// (the first task inherits). str() prints the canonical form: the plain
/// letter string when every task inherits, the extended form otherwise.
class VariantAssignment {
public:
    /// Parses either syntax; throws InvalidArgument on malformed text.
    explicit VariantAssignment(const std::string& text);

    explicit VariantAssignment(std::vector<ExecutionPolicy> policies);

    /// Plain placements, every task inheriting the chain backend — the exact
    /// semantics the letter-string algorithms always had.
    explicit VariantAssignment(const DeviceAssignment& placements);

    [[nodiscard]] std::size_t size() const noexcept { return policies_.size(); }
    [[nodiscard]] const ExecutionPolicy& at(std::size_t task_index) const;
    [[nodiscard]] const std::vector<ExecutionPolicy>& policies() const noexcept {
        return policies_;
    }

    /// The placement projection (drops the backend axis). Cached; valid for
    /// the lifetime of this object.
    [[nodiscard]] const DeviceAssignment& device_assignment() const noexcept {
        return placements_;
    }

    /// True when every task's backend is empty (pure placement algorithm).
    [[nodiscard]] bool uniform_inherit() const noexcept;

    /// Backend task `task_index` actually runs on: its policy backend when
    /// set, else `chain_default` (TaskChain::backend; may itself be empty =
    /// inherit the ambient backend).
    [[nodiscard]] const std::string& resolved_backend(
        std::size_t task_index, const std::string& chain_default) const;

    /// Canonical text form: "DDA" when every task inherits, else e.g.
    /// "D:portable,A:blas". parse(str()) == *this.
    [[nodiscard]] std::string str() const;

    /// Algorithm name: "alg" + str(), so pure-placement variants keep the
    /// paper's names ("algDDA") and mixed variants read "algD:portable,A:blas".
    [[nodiscard]] std::string alg_name() const { return "alg" + str(); }

    [[nodiscard]] bool operator==(const VariantAssignment& other) const noexcept {
        return policies_ == other.policies_;
    }

private:
    std::vector<ExecutionPolicy> policies_;
    DeviceAssignment placements_;
};

/// All 2^k assignments for a k-task chain, in lexicographic order with
/// D < A ("DD", "DA", "AD", "AA" for k = 2). Throws InvalidArgument when
/// task_count is 0 or >= kMaxEnumeratedTasks (the message names k).
[[nodiscard]] std::vector<DeviceAssignment> enumerate_assignments(std::size_t task_count);

/// All (2·B)^k per-task (placement, backend) variants of a k-task chain over
/// the B given backends, ordered by placement string first (the
/// enumerate_assignments order), then by backend tuple (most-significant task
/// first, backends in the given order). Backend names must be non-empty and
/// distinct. Throws InvalidArgument when task_count is 0 or >=
/// kMaxEnumeratedTasks, or when (2·B)^k exceeds kMaxEnumeratedVariants.
[[nodiscard]] std::vector<VariantAssignment> enumerate_variants(
    std::size_t task_count, const std::vector<std::string>& backends);

} // namespace relperf::workloads
