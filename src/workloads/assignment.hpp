#pragma once
//! \file assignment.hpp
//! Device assignments — the paper's algorithm space. Each mathematically
//! equivalent "algorithm" is one way of placing the tasks of a chain on the
//! edge **D**evice or the **A**ccelerator, written as a letter string such as
//! "DDA" (Table I) or "AD" (Figure 1a).

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::workloads {

/// Where a task runs.
enum class Placement : char {
    Device = 'D',      ///< Edge device (the data home; the code is invoked here).
    Accelerator = 'A', ///< Offload target (GPU / server / ...).
};

[[nodiscard]] char to_char(Placement p) noexcept;
[[nodiscard]] Placement placement_from_char(char c);

/// Immutable placement vector with the paper's letter-string syntax.
class DeviceAssignment {
public:
    /// Parses e.g. "DDA"; throws InvalidArgument on characters outside {D, A}
    /// or on an empty string.
    explicit DeviceAssignment(const std::string& letters);

    explicit DeviceAssignment(std::vector<Placement> placements);

    [[nodiscard]] std::size_t size() const noexcept { return placements_.size(); }
    [[nodiscard]] Placement at(std::size_t task_index) const;
    [[nodiscard]] const std::vector<Placement>& placements() const noexcept {
        return placements_;
    }

    /// Letter string, e.g. "DDA".
    [[nodiscard]] std::string str() const;

    /// Paper-style algorithm name, e.g. "algDDA".
    [[nodiscard]] std::string alg_name() const { return "alg" + str(); }

    /// Number of tasks placed on the accelerator.
    [[nodiscard]] std::size_t accelerator_count() const noexcept;

    /// Number of device changes along the chain including the virtual start
    /// on the Device (the code is invoked from the edge, paper Sec. I).
    [[nodiscard]] std::size_t switch_count() const noexcept;

    [[nodiscard]] bool operator==(const DeviceAssignment& other) const noexcept {
        return placements_ == other.placements_;
    }

private:
    std::vector<Placement> placements_;
};

/// All 2^k assignments for a k-task chain, in lexicographic order with
/// D < A ("DD", "DA", "AD", "AA" for k = 2).
[[nodiscard]] std::vector<DeviceAssignment> enumerate_assignments(std::size_t task_count);

} // namespace relperf::workloads
