#include "workloads/task.hpp"

#include "linalg/gemm.hpp"
#include "linalg/rls.hpp"
#include "support/error.hpp"

namespace relperf::workloads {

const char* to_string(TaskKind kind) noexcept {
    switch (kind) {
        case TaskKind::RlsLoop: return "rls";
        case TaskKind::GemmLoop: return "gemm";
    }
    return "?";
}

double ops_per_iteration(TaskKind kind) noexcept {
    switch (kind) {
        case TaskKind::RlsLoop:
            // randgen A, randgen B, Gram, +penalty*I, Cholesky, AtB, two
            // triangular solves, residual GEMM, subtract+norm.
            return 10.0;
        case TaskKind::GemmLoop:
            // randgen A, randgen B, GEMM.
            return 3.0;
    }
    return 1.0;
}

TaskCost task_cost(const TaskSpec& spec) {
    if (spec.cost_override.has_value()) return *spec.cost_override;
    RELPERF_REQUIRE(spec.size > 0, "task_cost: size must be positive");
    RELPERF_REQUIRE(spec.iters > 0, "task_cost: iters must be positive");

    const double n = static_cast<double>(spec.iters);
    const double s = static_cast<double>(spec.size);
    TaskCost cost;
    cost.op_launches = n * ops_per_iteration(spec.kind);
    switch (spec.kind) {
        case TaskKind::RlsLoop:
            cost.flops = n * linalg::rls_flops(spec.size);
            // The loop's matrices are generated on the executing device
            // (Procedure 6); only the penalty scalar crosses per direction.
            cost.bytes_in = 8.0;
            cost.bytes_out = 8.0;
            break;
        case TaskKind::GemmLoop:
            cost.flops = n * linalg::gemm_flops(spec.size, spec.size, spec.size);
            // Figure 1a semantics: the loop consumes data resident on the
            // edge device, so remote execution streams both operands in and
            // the product out, every iteration.
            cost.bytes_in = n * 2.0 * s * s * 8.0;
            cost.bytes_out = n * s * s * 8.0;
            break;
    }
    return cost;
}

} // namespace relperf::workloads
