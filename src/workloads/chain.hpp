#pragma once
//! \file chain.hpp
//! Task chains — the paper's "scientific codes". A chain is an ordered
//! sequence of TaskSpecs with a serial dependency (each task feeds a penalty
//! into the next one, Procedure 5), so a device assignment fully determines
//! the execution.

#include "workloads/assignment.hpp"
#include "workloads/task.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::workloads {

/// Ordered, serially-dependent sequence of tasks.
struct TaskChain {
    std::string name;
    std::vector<TaskSpec> tasks;
    /// Chain-level *default* linalg backend ("portable", "blas", ...); empty
    /// = inherit whatever backend is active on the executing thread. The same
    /// math on a different backend is a distinct measurable variant (the
    /// paper's generic vs vendor-optimized axis). A VariantAssignment's
    /// per-task ExecutionPolicy overrides this default task by task; plain
    /// DeviceAssignments run every task on it.
    std::string backend;

    [[nodiscard]] std::size_t size() const noexcept { return tasks.size(); }
};

/// The paper's Section IV chain (Procedure 5): three RLS MathTasks of sizes
/// 50, 75, 300 with `iters` loop iterations each (paper: n = 10).
[[nodiscard]] TaskChain paper_rls_chain(std::size_t iters = 10);

/// The paper's Figure 1a chain: two GEMM loops, L2 larger than L1. Aggregate
/// costs are calibrated overrides matching the Figure 1b regime (L1 strongly
/// compute-bound => offload wins; L2 data-movement-bound => offload loses
/// slightly; see sim/profile.cpp for the timing side).
[[nodiscard]] TaskChain two_loop_chain();

/// Generic RLS chain with arbitrary sizes. `backend` selects the linalg
/// backend the chain runs on (empty = inherit the active backend).
[[nodiscard]] TaskChain make_rls_chain(const std::vector<std::size_t>& sizes,
                                       std::size_t iters,
                                       const std::string& name = "rls-chain",
                                       const std::string& backend = "");

/// Total FLOPs executed on each placement under `assignment`; index 0 =
/// Device, 1 = Accelerator. Drives the Section IV FLOPs/energy criteria.
struct FlopSplit {
    double on_device = 0.0;
    double on_accelerator = 0.0;
    [[nodiscard]] double total() const noexcept { return on_device + on_accelerator; }
};

[[nodiscard]] FlopSplit flop_split(const TaskChain& chain,
                                   const DeviceAssignment& assignment);

/// Bytes that cross the device<->accelerator link under `assignment`
/// (stage-in for remote tasks + stage-out of remote results).
[[nodiscard]] double bytes_over_link(const TaskChain& chain,
                                     const DeviceAssignment& assignment);

} // namespace relperf::workloads
