#pragma once
//! \file generator.hpp
//! Randomized workload generation for property tests and ablation benches:
//! chains with random lengths/sizes/iteration counts, drawn reproducibly.

#include "stats/rng.hpp"
#include "workloads/chain.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace relperf::workloads {

/// Parameter ranges for random chains (inclusive bounds).
struct GeneratorConfig {
    std::size_t min_tasks = 2;
    std::size_t max_tasks = 4;
    std::size_t min_size = 32;
    std::size_t max_size = 256;
    std::size_t min_iters = 1;
    std::size_t max_iters = 20;
    /// Probability that a generated task is a GEMM loop (else RLS loop).
    double gemm_prob = 0.3;
    /// linalg backends to draw the chain's backend from, uniformly. Empty
    /// (the default) leaves chain.backend empty — the chain inherits the
    /// active backend, exactly the pre-backend behavior. Entries need not be
    /// registered in this build: the chain is plain data; executing it on a
    /// missing backend throws then.
    std::vector<std::string> backends;
};

/// Draws a random chain; deterministic in (config, rng state).
[[nodiscard]] TaskChain random_chain(const GeneratorConfig& config, stats::Rng& rng);

} // namespace relperf::workloads
