#pragma once
//! \file mathtask.hpp
//! Real (measured, not simulated) execution of the paper's loops.
//!
//! `run_rls_task` is a faithful implementation of Procedure 6:
//!
//!     MathTask(size, penalty):
//!       for i = 1..n:
//!         A, B <- random size x size
//!         Z <- (AᵀA + penalty I)⁻¹ AᵀB
//!         penalty <- ||A Z − B||₂
//!       return penalty
//!
//! `run_gemm_task` is the Figure 1a loop body. Both execute on the host CPU
//! via relperf_linalg; the RealExecutor (src/sim) wraps them with thread
//! clamping and artificial dispatch delays to emulate heterogeneous devices
//! (paper footnote 2).

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "workloads/chain.hpp"

namespace relperf::workloads {

/// Executes one RLS MathTask; returns the updated penalty.
[[nodiscard]] double run_rls_task(std::size_t size, std::size_t iters, double penalty,
                                  stats::Rng& rng);

/// Executes one GEMM loop; returns a checksum-style scalar (Frobenius norm of
/// the last product) so the work cannot be optimized away.
[[nodiscard]] double run_gemm_task(std::size_t size, std::size_t iters,
                                   stats::Rng& rng);

/// Dispatches on `spec.kind`; returns the scalar carried to the next task.
[[nodiscard]] double run_task(const TaskSpec& spec, double carry, stats::Rng& rng);

/// Runs the whole chain on the calling thread (placements ignored); returns
/// the final carried scalar. This is Procedure 5 without device splits.
[[nodiscard]] double run_chain(const TaskChain& chain, stats::Rng& rng);

/// Number of raw generator draws one run of `chain` consumes from its
/// measurement stream: every task iteration draws two random size x size
/// matrices (run_rls_task / run_gemm_task), one uniform draw per element and
/// one generator step per uniform draw. This is the real executor's
/// fast-forward contract — discarding stream_draws_per_run(chain) raw draws
/// advances a measurement stream bit-identically to one run — and it is
/// covered by a test so the workloads cannot silently change their
/// consumption.
[[nodiscard]] std::size_t stream_draws_per_run(const TaskChain& chain);

} // namespace relperf::workloads
