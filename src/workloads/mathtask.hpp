#pragma once
//! \file mathtask.hpp
//! Real (measured, not simulated) execution of the paper's loops.
//!
//! `run_rls_task` is a faithful implementation of Procedure 6:
//!
//!     MathTask(size, penalty):
//!       for i = 1..n:
//!         A, B <- random size x size
//!         Z <- (AᵀA + penalty I)⁻¹ AᵀB
//!         penalty <- ||A Z − B||₂
//!       return penalty
//!
//! `run_gemm_task` is the Figure 1a loop body. Both execute on the host CPU
//! via relperf_linalg; the RealExecutor (src/sim) wraps them with thread
//! clamping and artificial dispatch delays to emulate heterogeneous devices
//! (paper footnote 2).

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "workloads/chain.hpp"

namespace relperf::workloads {

/// Executes one RLS MathTask; returns the updated penalty.
[[nodiscard]] double run_rls_task(std::size_t size, std::size_t iters, double penalty,
                                  stats::Rng& rng);

/// Executes one GEMM loop; returns a checksum-style scalar (Frobenius norm of
/// the last product) so the work cannot be optimized away.
[[nodiscard]] double run_gemm_task(std::size_t size, std::size_t iters,
                                   stats::Rng& rng);

/// Dispatches on `spec.kind`; returns the scalar carried to the next task.
[[nodiscard]] double run_task(const TaskSpec& spec, double carry, stats::Rng& rng);

/// Runs the whole chain on the calling thread (placements ignored); returns
/// the final carried scalar. This is Procedure 5 without device splits.
[[nodiscard]] double run_chain(const TaskChain& chain, stats::Rng& rng);

} // namespace relperf::workloads
