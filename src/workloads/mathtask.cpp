#include "workloads/mathtask.hpp"

#include "linalg/backend.hpp"
#include "linalg/gemm.hpp"
#include "linalg/rls.hpp"
#include "support/error.hpp"

#include <cmath>
#include <optional>

namespace relperf::workloads {

double run_rls_task(std::size_t size, std::size_t iters, double penalty,
                    stats::Rng& rng) {
    RELPERF_REQUIRE(size > 0 && iters > 0, "run_rls_task: size/iters must be positive");
    RELPERF_REQUIRE(penalty >= 0.0 && std::isfinite(penalty),
                    "run_rls_task: penalty must be finite and non-negative");
    for (std::size_t i = 0; i < iters; ++i) {
        const linalg::Matrix a = linalg::Matrix::random_uniform(size, size, rng);
        const linalg::Matrix b = linalg::Matrix::random_uniform(size, size, rng);
        const linalg::Matrix z = linalg::rls_solve(a, b, penalty);
        penalty = linalg::rls_residual(a, b, z);
    }
    return penalty;
}

double run_gemm_task(std::size_t size, std::size_t iters, stats::Rng& rng) {
    RELPERF_REQUIRE(size > 0 && iters > 0, "run_gemm_task: size/iters must be positive");
    double checksum = 0.0;
    for (std::size_t i = 0; i < iters; ++i) {
        const linalg::Matrix a = linalg::Matrix::random_uniform(size, size, rng);
        const linalg::Matrix b = linalg::Matrix::random_uniform(size, size, rng);
        const linalg::Matrix c = linalg::multiply(a, b);
        checksum = c.frobenius_norm();
    }
    return checksum;
}

double run_task(const TaskSpec& spec, double carry, stats::Rng& rng) {
    switch (spec.kind) {
        case TaskKind::RlsLoop:
            return run_rls_task(spec.size, spec.iters, carry, rng);
        case TaskKind::GemmLoop:
            return run_gemm_task(spec.size, spec.iters, rng);
    }
    RELPERF_ASSERT(false, "run_task: unknown task kind");
    return carry;
}

std::size_t stream_draws_per_run(const TaskChain& chain) {
    std::size_t draws = 0;
    for (const TaskSpec& spec : chain.tasks) {
        // Both kinds draw two size x size random matrices per iteration and
        // nothing else; solves/products consume no randomness.
        draws += spec.iters * 2 * spec.size * spec.size;
    }
    return draws;
}

double run_chain(const TaskChain& chain, stats::Rng& rng) {
    RELPERF_REQUIRE(!chain.tasks.empty(), "run_chain: empty chain");
    // Select the chain's backend for the whole run (empty = inherit).
    std::optional<linalg::ScopedBackend> scope;
    if (!chain.backend.empty()) scope.emplace(chain.backend);
    double carry = 0.0;
    for (const TaskSpec& spec : chain.tasks) {
        carry = run_task(spec, carry, rng);
    }
    return carry;
}

} // namespace relperf::workloads
