#include "workloads/chain.hpp"

#include "support/error.hpp"

namespace relperf::workloads {

TaskChain paper_rls_chain(std::size_t iters) {
    RELPERF_REQUIRE(iters > 0, "paper_rls_chain: iters must be positive");
    TaskChain chain;
    chain.name = "paper-rls";
    chain.tasks = {
        TaskSpec{"L1", TaskKind::RlsLoop, 50, iters, std::nullopt},
        TaskSpec{"L2", TaskKind::RlsLoop, 75, iters, std::nullopt},
        TaskSpec{"L3", TaskKind::RlsLoop, 300, iters, std::nullopt},
    };
    return chain;
}

TaskChain two_loop_chain() {
    TaskChain chain;
    chain.name = "two-loop-gemm";
    // Aggregate, calibrated footprints (see DESIGN.md section 2):
    //  L1: high arithmetic intensity (2.5 GFLOP over 10 MB) -> offload wins.
    //  L2: "larger matrix-matrix multiplication" streaming 800 MB for
    //      4 GFLOP -> the data movement slightly exceeds the speed-up gain
    //      (paper Sec. I discussion of Figure 1b).
    TaskSpec l1{"L1", TaskKind::GemmLoop, 512, 1,
                TaskCost{2.5e9, 10.0e6, 8.0, 60.0}};
    TaskSpec l2{"L2", TaskKind::GemmLoop, 2048, 1,
                TaskCost{4.0e9, 800.0e6, 8.0, 60.0}};
    chain.tasks = {l1, l2};
    return chain;
}

TaskChain make_rls_chain(const std::vector<std::size_t>& sizes, std::size_t iters,
                         const std::string& name, const std::string& backend) {
    RELPERF_REQUIRE(!sizes.empty(), "make_rls_chain: need at least one task");
    RELPERF_REQUIRE(iters > 0, "make_rls_chain: iters must be positive");
    TaskChain chain;
    chain.name = name;
    chain.backend = backend;
    chain.tasks.reserve(sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        chain.tasks.push_back(TaskSpec{"L" + std::to_string(i + 1),
                                       TaskKind::RlsLoop, sizes[i], iters,
                                       std::nullopt});
    }
    return chain;
}

FlopSplit flop_split(const TaskChain& chain, const DeviceAssignment& assignment) {
    RELPERF_REQUIRE(chain.size() == assignment.size(),
                    "flop_split: assignment length must match chain length");
    FlopSplit split;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const double flops = task_cost(chain.tasks[i]).flops;
        if (assignment.at(i) == Placement::Device) {
            split.on_device += flops;
        } else {
            split.on_accelerator += flops;
        }
    }
    return split;
}

double bytes_over_link(const TaskChain& chain, const DeviceAssignment& assignment) {
    RELPERF_REQUIRE(chain.size() == assignment.size(),
                    "bytes_over_link: assignment length must match chain length");
    double bytes = 0.0;
    for (std::size_t i = 0; i < chain.size(); ++i) {
        if (assignment.at(i) == Placement::Accelerator) {
            const TaskCost cost = task_cost(chain.tasks[i]);
            bytes += cost.bytes_in + cost.bytes_out;
        }
    }
    return bytes;
}

} // namespace relperf::workloads
